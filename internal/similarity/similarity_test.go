package similarity

import (
	"math"
	"testing"
	"testing/quick"
)

func close(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestJaccard(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"", "", 1},
		{"a", "", 0},
		{"a b c", "a b c", 1},
		{"a b", "b c", 1.0 / 3},
		{"a b c d", "c d e f", 2.0 / 6},
		{"Hello World", "hello, WORLD!", 1},
	}
	for _, c := range cases {
		if got := Jaccard(c.a, c.b); !close(got, c.want) {
			t.Errorf("Jaccard(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestJaccardSortedMatchesSets(t *testing.T) {
	pairs := [][2]string{
		{"a b c", "b c d"},
		{"", "x"},
		{"", ""},
		{"the quick brown fox", "the slow brown dog"},
		{"x y z", "p q r"},
	}
	for _, p := range pairs {
		want := Jaccard(p[0], p[1])
		got := JaccardSorted(sorted(p[0]), sorted(p[1]))
		if !close(got, want) {
			t.Errorf("JaccardSorted(%q,%q) = %v, want %v", p[0], p[1], got, want)
		}
	}
}

func sorted(s string) []string {
	// Reuse record.SortedTokens indirectly via Jaccard's contract: tokens
	// are normalized. Inline here to keep the test independent.
	set := map[string]struct{}{}
	cur := ""
	flush := func() {
		if cur != "" {
			set[cur] = struct{}{}
			cur = ""
		}
	}
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z' || c >= '0' && c <= '9':
			cur += string(c)
		case c >= 'A' && c <= 'Z':
			cur += string(c - 'A' + 'a')
		default:
			flush()
		}
	}
	flush()
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	// insertion sort; tiny inputs
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"abc", "abc", 0},
		{"chevrolet", "chevy", 5},
	}
	for _, c := range cases {
		if got := EditDistance(c.a, c.b); got != c.want {
			t.Errorf("EditDistance(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinSimilarity(t *testing.T) {
	if got := Levenshtein("abcd", "abce"); !close(got, 0.75) {
		t.Errorf("Levenshtein(abcd,abce) = %v, want 0.75", got)
	}
	if got := Levenshtein("", ""); got != 1 {
		t.Errorf("Levenshtein empty = %v, want 1", got)
	}
	if got := Levenshtein("abc", "xyz"); got != 0 {
		t.Errorf("Levenshtein disjoint = %v, want 0", got)
	}
}

func TestJaroWinkler(t *testing.T) {
	// Classic textbook values.
	if got := JaroWinkler("MARTHA", "MARHTA"); math.Abs(got-0.9611) > 1e-3 {
		t.Errorf("JaroWinkler(MARTHA,MARHTA) = %v, want ~0.9611", got)
	}
	if got := JaroWinkler("DWAYNE", "DUANE"); math.Abs(got-0.84) > 1e-2 {
		t.Errorf("JaroWinkler(DWAYNE,DUANE) = %v, want ~0.84", got)
	}
	if got := JaroWinkler("", ""); got != 1 {
		t.Errorf("JaroWinkler empty = %v, want 1", got)
	}
	if got := JaroWinkler("abc", ""); got != 0 {
		t.Errorf("JaroWinkler one-empty = %v, want 0", got)
	}
}

func TestCosine(t *testing.T) {
	if got := Cosine("a a b", "a a b"); !close(got, 1) {
		t.Errorf("Cosine identical = %v, want 1", got)
	}
	if got := Cosine("a", "b"); got != 0 {
		t.Errorf("Cosine disjoint = %v, want 0", got)
	}
	// freq vectors (2,1) vs (1,2) for tokens a,b: cos = 4/5.
	if got := Cosine("a a b", "a b b"); !close(got, 0.8) {
		t.Errorf("Cosine = %v, want 0.8", got)
	}
}

func TestOverlap(t *testing.T) {
	if got := Overlap("a b", "a b c d"); !close(got, 1) {
		t.Errorf("Overlap subset = %v, want 1", got)
	}
	if got := Overlap("a x", "a b c d"); !close(got, 0.5) {
		t.Errorf("Overlap = %v, want 0.5", got)
	}
}

func TestNGram(t *testing.T) {
	if got := NGram("night", "night"); !close(got, 1) {
		t.Errorf("NGram identical = %v, want 1", got)
	}
	if NGram("night", "nacht") >= 1 {
		t.Errorf("NGram different words should be < 1")
	}
	if got := NGram("ab", "ab"); !close(got, 1) {
		t.Errorf("NGram short identical = %v, want 1", got)
	}
}

func TestPhoneticKey(t *testing.T) {
	if PhoneticKey("philip") != PhoneticKey("filip") {
		t.Errorf("ph/f should share a key: %q vs %q", PhoneticKey("philip"), PhoneticKey("filip"))
	}
	if PhoneticKey("cat") != PhoneticKey("kat") {
		t.Errorf("c/k should share a key")
	}
	if PhoneticKey("smith") == PhoneticKey("jones") {
		t.Errorf("distinct names should not collide")
	}
}

func TestPhonetic(t *testing.T) {
	if got := Phonetic("philip morris", "filip morris"); !close(got, 1) {
		t.Errorf("Phonetic = %v, want 1", got)
	}
}

func TestMongeElkan(t *testing.T) {
	if got := MongeElkan("john smith", "john smith"); !close(got, 1) {
		t.Errorf("identical = %v", got)
	}
	if got := MongeElkan("", ""); got != 1 {
		t.Errorf("empty = %v", got)
	}
	if got := MongeElkan("a", ""); got != 0 {
		t.Errorf("one empty = %v", got)
	}
	// Token-level typos keep the score high where Jaccard collapses.
	typod := MongeElkan("jonh smith", "john smith")
	if typod < 0.9 {
		t.Errorf("typo tolerance too low: %v", typod)
	}
	if j := Jaccard("jonh smith", "john smith"); typod <= j {
		t.Errorf("MongeElkan (%v) should beat Jaccard (%v) on token typos", typod, j)
	}
	// Unrelated strings stay low.
	if got := MongeElkan("alpha beta", "zzz qqq"); got > 0.6 {
		t.Errorf("unrelated strings scored %v", got)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"jaccard", "levenshtein", "jaro-winkler", "cosine", "ngram", "overlap", "phonetic", "combined", "monge-elkan"} {
		if ByName(name) == nil {
			t.Errorf("ByName(%q) = nil", name)
		}
	}
	if ByName("nope") != nil {
		t.Errorf("ByName(nope) should be nil")
	}
}

// Property tests: every metric is symmetric, bounded in [0,1], and scores
// a string against itself as 1.
func TestMetricProperties(t *testing.T) {
	metrics := map[string]Metric{
		"jaccard":     Jaccard,
		"levenshtein": Levenshtein,
		"jarowinkler": JaroWinkler,
		"cosine":      Cosine,
		"ngram":       NGram,
		"overlap":     Overlap,
		"phonetic":    Phonetic,
		"combined":    Combined,
		"mongeelkan":  MongeElkan,
	}
	for name, m := range metrics {
		m := m
		sym := func(a, b string) bool {
			x, y := m(a, b), m(b, a)
			return close(x, y) && x >= 0 && x <= 1+1e-9
		}
		if err := quick.Check(sym, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s symmetry/bounds: %v", name, err)
		}
		self := func(a string) bool { return close(m(a, a), 1) }
		if err := quick.Check(self, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s self-similarity: %v", name, err)
		}
	}
}

// Property: EditDistance satisfies the triangle inequality and symmetry.
func TestEditDistanceProperties(t *testing.T) {
	tri := func(a, b, c string) bool {
		return EditDistance(a, c) <= EditDistance(a, b)+EditDistance(b, c)
	}
	if err := quick.Check(tri, &quick.Config{MaxCount: 200}); err != nil {
		t.Errorf("triangle inequality: %v", err)
	}
	sym := func(a, b string) bool { return EditDistance(a, b) == EditDistance(b, a) }
	if err := quick.Check(sym, &quick.Config{MaxCount: 200}); err != nil {
		t.Errorf("symmetry: %v", err)
	}
}
