package similarity

import (
	"math"
	"testing"
)

// metricSeeds is the shared seed corpus for the metric fuzz targets:
// empty strings, unicode, case/punctuation noise, near-duplicates, and
// pathological repetition.
var metricSeeds = [][2]string{
	{"", ""},
	{"", "a"},
	{"hello world", "hello world"},
	{"hello world", "world hello"},
	{"Chevrolet Motor Division", "chevy motor division"},
	{"a b c d e f", "a b c"},
	{"aaaaaaaaaa", "aaaaaaaaab"},
	{"héllo wörld", "hello world"},
	{"日本語 テスト", "日本語"},
	{"x!@#$%^&*()", "x"},
	{"the the the the", "the"},
	{"\x00\xff\xfe", "\xff"},
}

// checkMetric asserts the package-level contract (doc comment of package
// similarity): scores in [0, 1], symmetry, and identity scoring 1.
func checkMetric(t *testing.T, name string, m Metric, a, b string) {
	t.Helper()
	ab := m(a, b)
	if math.IsNaN(ab) || ab < 0 || ab > 1 {
		t.Fatalf("%s(%q, %q) = %v, out of [0, 1]", name, a, b, ab)
	}
	if ba := m(b, a); ab != ba {
		t.Fatalf("%s not symmetric: (%q, %q) = %v, reversed = %v", name, a, b, ab, ba)
	}
	if self := m(a, a); self != 1 {
		t.Fatalf("%s(%q, %q) = %v, want 1 (identity)", name, a, a, self)
	}
}

func FuzzJaccard(f *testing.F) {
	for _, s := range metricSeeds {
		f.Add(s[0], s[1])
	}
	f.Fuzz(func(t *testing.T, a, b string) {
		checkMetric(t, "Jaccard", Jaccard, a, b)
	})
}

func FuzzLevenshtein(f *testing.F) {
	for _, s := range metricSeeds {
		f.Add(s[0], s[1])
	}
	f.Fuzz(func(t *testing.T, a, b string) {
		checkMetric(t, "Levenshtein", Levenshtein, a, b)
		// The underlying distance is itself symmetric and bounded.
		d := EditDistance(a, b)
		if d != EditDistance(b, a) {
			t.Fatalf("EditDistance not symmetric on %q, %q", a, b)
		}
		if d < 0 || d > max(len(a), len(b)) {
			t.Fatalf("EditDistance(%q, %q) = %d, out of range", a, b, d)
		}
	})
}

func FuzzJaroWinkler(f *testing.F) {
	for _, s := range metricSeeds {
		f.Add(s[0], s[1])
	}
	f.Fuzz(func(t *testing.T, a, b string) {
		checkMetric(t, "JaroWinkler", JaroWinkler, a, b)
	})
}
