package similarity

import (
	"math"

	"acd/internal/record"
)

// Corpus holds document frequencies over a record collection and scores
// pairs with IDF-weighted Jaccard: rare tokens (model numbers, street
// names) count for more than ubiquitous ones ("the", "proceedings",
// "st"). This is the token-based weighting of [12] adapted to the
// pruning phase; build one with NewCorpus and use AsMetric anywhere a
// Metric is expected.
type Corpus struct {
	df   map[string]int
	docs int
}

// NewCorpus indexes the distinct-token document frequencies of records.
func NewCorpus(records []record.Record) *Corpus {
	c := &Corpus{df: make(map[string]int), docs: len(records)}
	for _, r := range records {
		for t := range record.TokenSet(r.Text()) {
			c.df[t]++
		}
	}
	return c
}

// IDF returns the inverse document frequency of a token:
// log(1 + n/df). Unseen tokens get the maximum weight (df = 1).
func (c *Corpus) IDF(token string) float64 {
	df := c.df[token]
	if df < 1 {
		df = 1
	}
	return math.Log(1 + float64(c.docs)/float64(df))
}

// WeightedJaccard scores two strings as Σ_{t∈A∩B} idf(t) / Σ_{t∈A∪B} idf(t).
// Two empty token sets score 1.
func (c *Corpus) WeightedJaccard(a, b string) float64 {
	sa := record.TokenSet(a)
	sb := record.TokenSet(b)
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	if len(sa) == 0 || len(sb) == 0 {
		return 0
	}
	var inter, union float64
	for t := range sa {
		w := c.IDF(t)
		union += w
		if _, ok := sb[t]; ok {
			inter += w
		}
	}
	for t := range sb {
		if _, ok := sa[t]; !ok {
			union += c.IDF(t)
		}
	}
	return inter / union
}

// AsMetric adapts the corpus scorer to the Metric function type.
func (c *Corpus) AsMetric() Metric {
	return c.WeightedJaccard
}
