// Package histogram implements the equi-depth histogram estimator of
// Section 5.2: it maps a machine-based similarity score f(r, r′) to an
// estimate of the crowd-based score f_c(r, r′), learned from the pairs
// already crowdsourced. Following [48] (and the paper), the default
// bucket count is m = 20, and the histogram is rebuilt whenever new crowd
// answers arrive.
//
// The refinement phase is its only consumer: Equations 5–6 need f_c for
// pairs the crowd has not answered yet, and Build's estimate stands in
// until the pair is actually crowdsourced (the refine/histogram_rebuilds
// and refine/histogram_samples metrics count this churn).
package histogram
