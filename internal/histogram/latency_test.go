package histogram

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// oracleQuantile is the brute-force reference: the ceil(q*n)-th order
// statistic of the sorted samples.
func oracleQuantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// TestLatencyQuantileOracle checks every reported percentile against
// the sorted-slice oracle within the histogram's documented relative
// error bound, across several latency distributions.
func TestLatencyQuantileOracle(t *testing.T) {
	distributions := map[string]func(r *rand.Rand) time.Duration{
		"uniform": func(r *rand.Rand) time.Duration {
			return time.Duration(r.Int63n(int64(50 * time.Millisecond)))
		},
		"lognormal": func(r *rand.Rand) time.Duration {
			return time.Duration(math.Exp(r.NormFloat64()*1.5+13) /*~0.4ms median*/)
		},
		"bimodal": func(r *rand.Rand) time.Duration {
			if r.Float64() < 0.95 {
				return time.Duration(1+r.Int63n(2_000_000)) * time.Nanosecond
			}
			return time.Duration(100+r.Int63n(400)) * time.Millisecond
		},
		"tiny": func(r *rand.Rand) time.Duration { // exact-bucket range
			return time.Duration(r.Int63n(64))
		},
	}
	for name, draw := range distributions {
		t.Run(name, func(t *testing.T) {
			r := rand.New(rand.NewSource(42))
			l := NewLatency()
			samples := make([]time.Duration, 20000)
			for i := range samples {
				samples[i] = draw(r)
				l.Observe(samples[i])
			}
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			if l.Count() != int64(len(samples)) {
				t.Fatalf("Count = %d, want %d", l.Count(), len(samples))
			}
			for _, q := range []float64{0, 0.5, 0.9, 0.99, 0.999, 1} {
				got, want := l.Quantile(q), oracleQuantile(samples, q)
				// The bucket midpoint is within 2^-6 of any absorbed
				// value; allow a little extra for the rank falling next
				// to a bucket boundary.
				tol := time.Duration(float64(want)*3/latSubCount) + 1
				if got < want-tol || got > want+tol {
					t.Errorf("q=%v: got %v, oracle %v (tol %v)", q, got, want, tol)
				}
			}
			if got, want := l.Min(), samples[0]; got != want {
				t.Errorf("Min = %v, want %v", got, want)
			}
			if got, want := l.Max(), samples[len(samples)-1]; got != want {
				t.Errorf("Max = %v, want %v", got, want)
			}
			mean := l.Mean()
			var sum float64
			for _, s := range samples {
				sum += float64(s)
			}
			want := time.Duration(sum / float64(len(samples)))
			if diff := mean - want; diff < -time.Microsecond || diff > time.Microsecond {
				t.Errorf("Mean = %v, oracle %v", mean, want)
			}
		})
	}
}

// TestLatencyBucketsInvertible: every bucket index maps back to a range
// that contains exactly the values mapping to it, and indices are
// monotone in the value.
func TestLatencyBucketsInvertible(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 63, 64, 65, 127, 128, 1000, 1 << 20, 1<<40 + 12345, math.MaxInt64} {
		idx := latIndex(v)
		if idx < prev {
			// indices for increasing probe values must not decrease
			t.Errorf("latIndex(%d) = %d, not monotone (prev %d)", v, idx, prev)
		}
		prev = idx
		lo, width := latBound(idx)
		// lo+width can overflow for the topmost bucket; compare unsigned.
		if v < lo || uint64(v-lo) >= uint64(width) {
			t.Errorf("value %d landed in bucket %d = [%d, +%d)", v, idx, lo, width)
		}
	}
	if latIndex(math.MaxInt64) >= latBuckets {
		t.Fatalf("MaxInt64 bucket %d out of range %d", latIndex(math.MaxInt64), latBuckets)
	}
}

// TestLatencyEmpty: an empty histogram answers zero everywhere.
func TestLatencyEmpty(t *testing.T) {
	l := NewLatency()
	if l.Count() != 0 || l.Quantile(0.5) != 0 || l.Mean() != 0 || l.Max() != 0 || l.Min() != 0 {
		t.Errorf("empty histogram not all-zero: count=%d p50=%v mean=%v max=%v min=%v",
			l.Count(), l.Quantile(0.5), l.Mean(), l.Max(), l.Min())
	}
}

// TestLatencyConcurrent hammers one histogram from many goroutines
// (run under -race in CI) and checks nothing is lost.
func TestLatencyConcurrent(t *testing.T) {
	l := NewLatency()
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < per; i++ {
				l.Observe(time.Duration(r.Int63n(int64(time.Second))))
				if i%100 == 0 {
					l.Quantile(0.99) // concurrent reads must be safe
				}
			}
		}(w)
	}
	wg.Wait()
	if l.Count() != workers*per {
		t.Errorf("Count = %d, want %d", l.Count(), workers*per)
	}
	if p50 := l.Quantile(0.5); p50 < 400*time.Millisecond || p50 > 600*time.Millisecond {
		t.Errorf("uniform p50 = %v, want ≈500ms", p50)
	}
}

// TestLatencyMerge: merging two histograms equals observing the union.
func TestLatencyMerge(t *testing.T) {
	a, b, both := NewLatency(), NewLatency(), NewLatency()
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		d := time.Duration(r.Int63n(int64(10 * time.Millisecond)))
		both.Observe(d)
		if i%2 == 0 {
			a.Observe(d)
		} else {
			b.Observe(d)
		}
	}
	a.Merge(b)
	if a.Count() != both.Count() {
		t.Fatalf("merged count %d, want %d", a.Count(), both.Count())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if a.Quantile(q) != both.Quantile(q) {
			t.Errorf("q=%v: merged %v, direct %v", q, a.Quantile(q), both.Quantile(q))
		}
	}
	if a.Min() != both.Min() || a.Max() != both.Max() || a.Mean() != both.Mean() {
		t.Errorf("merged min/max/mean %v/%v/%v, direct %v/%v/%v",
			a.Min(), a.Max(), a.Mean(), both.Min(), both.Max(), both.Mean())
	}
	// Merging an empty histogram must not disturb min.
	a.Merge(NewLatency())
	if a.Min() != both.Min() {
		t.Errorf("merge of empty changed min to %v", a.Min())
	}
}
