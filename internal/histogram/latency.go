package histogram

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// This file extends the package beyond the paper's equi-depth
// machine→crowd score histogram with an HDR-style latency histogram for
// the serving layer: log-linear buckets with bounded relative error,
// lock-free atomic recording, and percentile queries. acdload uses it to
// report per-endpoint p50/p90/p99/p999 under concurrent load.

const (
	// latSubBits sets the per-octave resolution: 2^latSubBits
	// sub-buckets per power of two, so a bucket midpoint is within
	// 1/2^latSubBits of any value it absorbs (~1.6% at 6 bits).
	latSubBits = 6
	// latSubCount is the number of exact buckets at the bottom of the
	// range (values 0..latSubCount-1 are recorded exactly).
	latSubCount = 1 << latSubBits
	// latHalf is the sub-bucket count per octave above the exact range.
	latHalf = latSubCount / 2
	// latMaxShift bounds the octave index for any int64 value.
	latMaxShift = 64 - latSubBits
	// latBuckets is the total bucket count covering all of int64.
	latBuckets = latSubCount + latMaxShift*latHalf
)

// Latency is a race-safe HDR-style histogram of durations. Recording is
// a single atomic add into a log-linear bucket (values below 64ns are
// exact; above that, relative error is bounded by 2^-6 ≈ 1.6%), so many
// goroutines can Observe concurrently with no lock and no allocation.
// Quantile queries walk an atomic snapshot of the buckets.
//
// The zero value is NOT ready to use; call NewLatency.
type Latency struct {
	counts [latBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
	min    atomic.Int64
}

// NewLatency returns an empty latency histogram.
func NewLatency() *Latency {
	l := &Latency{}
	l.min.Store(math.MaxInt64)
	return l
}

// latIndex maps a non-negative value to its bucket.
func latIndex(v int64) int {
	if v < latSubCount {
		return int(v)
	}
	shift := bits.Len64(uint64(v)) - latSubBits // ≥ 1
	return shift*latHalf + int(v>>uint(shift))  // v>>shift ∈ [latHalf, latSubCount)
}

// latBound returns the inclusive lower bound and width of a bucket.
func latBound(idx int) (lo, width int64) {
	if idx < latSubCount {
		return int64(idx), 1
	}
	shift := idx/latHalf - 1
	mant := int64(idx - shift*latHalf) // ∈ [latHalf, latSubCount)
	return mant << uint(shift), 1 << uint(shift)
}

// Observe records one duration. Negative durations count as zero.
func (l *Latency) Observe(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	l.counts[latIndex(v)].Add(1)
	l.count.Add(1)
	l.sum.Add(v)
	for {
		cur := l.max.Load()
		if v <= cur || l.max.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := l.min.Load()
		if v >= cur || l.min.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of observations.
func (l *Latency) Count() int64 { return l.count.Load() }

// Mean returns the mean observed duration (0 when empty).
func (l *Latency) Mean() time.Duration {
	n := l.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(l.sum.Load() / n)
}

// Max returns the largest observed duration (0 when empty).
func (l *Latency) Max() time.Duration {
	if l.count.Load() == 0 {
		return 0
	}
	return time.Duration(l.max.Load())
}

// Min returns the smallest observed duration (0 when empty).
func (l *Latency) Min() time.Duration {
	if l.count.Load() == 0 {
		return 0
	}
	return time.Duration(l.min.Load())
}

// Quantile returns the q-quantile (q in [0,1]; q=0.5 is the median) as
// the midpoint of the bucket holding that rank, clamped to the observed
// min/max. Concurrent Observes during the query shift the answer by at
// most the in-flight observations; the result is always a value the
// histogram could legally report. Empty histograms return 0.
func (l *Latency) Quantile(q float64) time.Duration {
	// Snapshot bucket counts first and derive the total from the
	// snapshot, so the walk is internally consistent even under
	// concurrent writers.
	var snap [latBuckets]int64
	var total int64
	for i := range l.counts {
		c := l.counts[i].Load()
		snap[i] = c
		total += c
	}
	if total == 0 {
		return 0
	}
	if q <= 0 {
		return l.Min()
	}
	if q >= 1 {
		return l.Max()
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range snap {
		cum += c
		if cum >= rank {
			lo, width := latBound(i)
			v := lo + width/2
			if mx := l.max.Load(); v > mx {
				v = mx
			}
			if mn := l.min.Load(); v < mn {
				v = mn
			}
			return time.Duration(v)
		}
	}
	return l.Max() // unreachable: cum == total ≥ rank by the clamps above
}

// Merge adds every observation of o into l. o is read atomically but
// not frozen: merging while o is being written captures some prefix of
// the concurrent observations.
func (l *Latency) Merge(o *Latency) {
	for i := range o.counts {
		if c := o.counts[i].Load(); c != 0 {
			l.counts[i].Add(c)
		}
	}
	l.count.Add(o.count.Load())
	l.sum.Add(o.sum.Load())
	for {
		cur, ov := l.max.Load(), o.max.Load()
		if ov <= cur || l.max.CompareAndSwap(cur, ov) {
			break
		}
	}
	if o.count.Load() > 0 {
		for {
			cur, ov := l.min.Load(), o.min.Load()
			if ov >= cur || l.min.CompareAndSwap(cur, ov) {
				break
			}
		}
	}
}
