package histogram

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyIsIdentity(t *testing.T) {
	h := Build(nil, 20)
	for _, f := range []float64{0, 0.3, 0.75, 1} {
		if got := h.Estimate(f); got != f {
			t.Errorf("identity Estimate(%v) = %v", f, got)
		}
	}
	if h.Buckets() != 0 {
		t.Errorf("empty histogram has %d buckets", h.Buckets())
	}
}

func TestSingleSample(t *testing.T) {
	h := Build([]Sample{{Machine: 0.5, Crowd: 0.9}}, 20)
	if h.Buckets() != 1 {
		t.Fatalf("buckets = %d", h.Buckets())
	}
	for _, f := range []float64{0, 0.5, 1} {
		if got := h.Estimate(f); got != 0.9 {
			t.Errorf("Estimate(%v) = %v, want 0.9", f, got)
		}
	}
}

func TestEquiDepthSplit(t *testing.T) {
	// Four samples, two buckets: [(0.1,0), (0.2,0.2)] and [(0.8,0.9), (0.9,1.0)].
	samples := []Sample{
		{0.1, 0}, {0.2, 0.2}, {0.8, 0.9}, {0.9, 1.0},
	}
	h := Build(samples, 2)
	if h.Buckets() != 2 {
		t.Fatalf("buckets = %d", h.Buckets())
	}
	if got := h.Estimate(0.15); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("low bucket = %v, want 0.1", got)
	}
	if got := h.Estimate(0.85); math.Abs(got-0.95) > 1e-9 {
		t.Errorf("high bucket = %v, want 0.95", got)
	}
	// Above all boundaries falls into the last bucket.
	if got := h.Estimate(0.99); math.Abs(got-0.95) > 1e-9 {
		t.Errorf("overflow = %v, want 0.95", got)
	}
	// At/below the first boundary falls into the first bucket.
	if got := h.Estimate(0.0); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("underflow = %v, want 0.1", got)
	}
}

func TestDefaultBucketCount(t *testing.T) {
	var samples []Sample
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		m := rng.Float64()
		samples = append(samples, Sample{Machine: m, Crowd: m})
	}
	h := Build(samples, 0) // 0 means DefaultBuckets
	if h.Buckets() != DefaultBuckets {
		t.Errorf("buckets = %d, want %d", h.Buckets(), DefaultBuckets)
	}
}

// Property: estimates are always within the [min, max] crowd range of the
// sample set, and Build never panics on random input.
func TestEstimateBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50)
		samples := make([]Sample, n)
		lo, hi := 1.0, 0.0
		for i := range samples {
			samples[i] = Sample{Machine: rng.Float64(), Crowd: rng.Float64()}
			if samples[i].Crowd < lo {
				lo = samples[i].Crowd
			}
			if samples[i].Crowd > hi {
				hi = samples[i].Crowd
			}
		}
		h := Build(samples, 1+rng.Intn(30))
		for k := 0; k < 20; k++ {
			e := h.Estimate(rng.Float64())
			if n == 0 {
				continue // identity histogram
			}
			if e < lo-1e-9 || e > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: for a monotone crowd/machine relationship, the histogram's
// estimate is monotone non-decreasing in f.
func TestMonotoneData(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var samples []Sample
	for i := 0; i < 500; i++ {
		m := rng.Float64()
		samples = append(samples, Sample{Machine: m, Crowd: m * m})
	}
	h := Build(samples, 20)
	prev := -1.0
	for f := 0.0; f <= 1.0; f += 0.01 {
		e := h.Estimate(f)
		if e < prev-1e-9 {
			t.Fatalf("estimate decreased at f=%v: %v < %v", f, e, prev)
		}
		prev = e
	}
}
