package histogram

import "sort"

// DefaultBuckets is the paper's bucket count (Section 5.2, "we set
// m = 20").
const DefaultBuckets = 20

// Sample is one crowdsourced pair: its machine score and the crowd score
// observed for it.
type Sample struct {
	Machine float64
	Crowd   float64
}

// Histogram maps machine scores to estimated crowd scores via equi-depth
// buckets over the machine-score distribution of the samples.
type Histogram struct {
	// upper[i] is the inclusive upper machine-score bound of bucket i;
	// bucket i covers (upper[i-1], upper[i]]. upper[len-1] is +inf
	// conceptually (any score above the last boundary maps there).
	upper []float64
	// avg[i] is the mean crowd score of samples in bucket i.
	avg []float64
}

// Build constructs an equi-depth histogram with m buckets from the given
// samples. With fewer samples than buckets, each sample gets its own
// bucket. With no samples, Build returns an identity histogram whose
// Estimate(f) = f — the "straightforward solution" the paper falls back
// from (Section 5.2).
func Build(samples []Sample, m int) *Histogram {
	if m <= 0 {
		m = DefaultBuckets
	}
	if len(samples) == 0 {
		return &Histogram{}
	}
	s := append([]Sample(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i].Machine < s[j].Machine })
	if m > len(s) {
		m = len(s)
	}
	h := &Histogram{
		upper: make([]float64, 0, m),
		avg:   make([]float64, 0, m),
	}
	// Equi-depth split: bucket i holds samples [i*len/m, (i+1)*len/m).
	for i := 0; i < m; i++ {
		lo := i * len(s) / m
		hi := (i + 1) * len(s) / m
		if lo == hi {
			continue
		}
		sum := 0.0
		for _, x := range s[lo:hi] {
			sum += x.Crowd
		}
		h.upper = append(h.upper, s[hi-1].Machine)
		h.avg = append(h.avg, sum/float64(hi-lo))
	}
	return h
}

// Estimate returns the estimated crowd score for machine score f: the
// mean crowd score of the bucket covering f. Scores above the highest
// boundary use the last bucket; an empty histogram returns f unchanged.
func (h *Histogram) Estimate(f float64) float64 {
	if len(h.upper) == 0 {
		return f
	}
	i := sort.SearchFloat64s(h.upper, f)
	if i == len(h.upper) {
		i = len(h.upper) - 1
	}
	return h.avg[i]
}

// Buckets returns the number of non-empty buckets (0 for the identity
// histogram).
func (h *Histogram) Buckets() int { return len(h.upper) }
