// Package testutil holds small helpers shared across the repo's test
// suites.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// Baseline snapshots the goroutine count for a later CheckGoroutines —
// take it before starting the servers, pools, or followers under test.
// A GC first reaps finalizer-driven goroutines left by earlier tests.
func Baseline() int {
	runtime.GC()
	return runtime.NumGoroutine()
}

// CheckGoroutines fails t when the goroutine count has not returned to
// the baseline after everything the test started was shut down.
// Background machinery (idle HTTP keep-alive connections, timer
// goroutines) takes a moment to wind down, so it polls up to 5 seconds
// and tolerates a slack of 2 before declaring a leak, dumping all
// stacks so the leaked goroutine is identifiable.
func CheckGoroutines(t testing.TB, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Errorf("goroutine leak: %d running, baseline %d\n%s",
		runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
}
