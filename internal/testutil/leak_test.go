package testutil

import (
	"testing"
	"time"
)

// TestCheckGoroutines covers both verdicts: a clean baseline passes
// immediately, and goroutines still running past the deadline are
// reported as a leak (observed through a recording TB so the failure
// doesn't fail this test).
func TestCheckGoroutines(t *testing.T) {
	base := Baseline()
	CheckGoroutines(t, base)

	// Park goroutines past the slack and watch the check trip. The
	// 5-second poll keeps this case slow, so gate it behind -short.
	if testing.Short() {
		t.Skip("leak-detection negative case polls for 5s")
	}
	stop := make(chan struct{})
	defer close(stop)
	for i := 0; i < 4; i++ {
		go func() { <-stop }()
	}
	rec := &recordingTB{TB: t}
	CheckGoroutines(rec, base)
	if !rec.failed {
		t.Fatal("CheckGoroutines missed 4 leaked goroutines")
	}
}

// recordingTB captures Errorf instead of failing the enclosing test.
type recordingTB struct {
	testing.TB
	failed bool
}

func (r *recordingTB) Errorf(string, ...any) { r.failed = true }
func (r *recordingTB) Helper()               {}

// TestBaselineStable: back-to-back baselines agree when nothing was
// started in between (within the same slack the checker allows).
func TestBaselineStable(t *testing.T) {
	a := Baseline()
	time.Sleep(10 * time.Millisecond)
	b := Baseline()
	if b > a+2 || a > b+2 {
		t.Fatalf("baselines drifted with no work in between: %d then %d", a, b)
	}
}
