package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"acd/internal/record"
)

// call makes one request against a Local server and decodes the JSON
// response body.
func call(t *testing.T, method, url, body string) (int, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("%s %s: decoding response: %v", method, url, err)
	}
	return resp.StatusCode, m
}

func recordsBody(texts ...string) string {
	var recs []string
	for _, s := range texts {
		recs = append(recs, fmt.Sprintf(`{"fields":{"text":%q}}`, s))
	}
	return `{"records":[` + strings.Join(recs, ",") + `]}`
}

// TestLocalLifecycle drives every endpoint of an in-process volatile
// server, including the error paths.
func TestLocalLifecycle(t *testing.T) {
	l, err := StartLocal(Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	code, m := call(t, http.MethodPost, l.URL+"/records", recordsBody(
		"golden dragon palace chinese broadway",
		"golden dragon palace chinese broadway ave",
		"harbor seafood grill market st",
	))
	if code != http.StatusOK || len(m["ids"].([]any)) != 3 {
		t.Fatalf("POST /records: %d %v", code, m)
	}
	if code, m = call(t, http.MethodPost, l.URL+"/answers", `{"answers":[{"lo":0,"hi":1,"fc":1}]}`); code != http.StatusOK || m["accepted"].(float64) != 1 {
		t.Fatalf("POST /answers: %d %v", code, m)
	}
	if code, m = call(t, http.MethodPost, l.URL+"/resolve", ""); code != http.StatusOK || m["Round"].(float64) != 1 {
		t.Fatalf("POST /resolve: %d %v", code, m)
	}
	if code, m = call(t, http.MethodGet, l.URL+"/clusters", ""); code != http.StatusOK || m["records"].(float64) != 3 {
		t.Fatalf("GET /clusters: %d %v", code, m)
	}
	if code, m = call(t, http.MethodGet, l.URL+"/healthz", ""); code != http.StatusOK || m["status"] != "ok" {
		t.Fatalf("GET /healthz: %d %v", code, m)
	}
	if code, _ = call(t, http.MethodGet, l.URL+"/metrics", ""); code != http.StatusOK {
		t.Fatalf("GET /metrics: %d", code)
	}
	// Error paths.
	if code, _ = call(t, http.MethodGet, l.URL+"/records", ""); code != http.StatusMethodNotAllowed {
		t.Errorf("GET /records = %d, want 405", code)
	}
	if code, _ = call(t, http.MethodGet, l.URL+"/answers", ""); code != http.StatusMethodNotAllowed {
		t.Errorf("GET /answers = %d, want 405", code)
	}
	if code, _ = call(t, http.MethodGet, l.URL+"/resolve", ""); code != http.StatusMethodNotAllowed {
		t.Errorf("GET /resolve = %d, want 405", code)
	}
	if code, _ = call(t, http.MethodPost, l.URL+"/clusters", ""); code != http.StatusMethodNotAllowed {
		t.Errorf("POST /clusters = %d, want 405", code)
	}
	if code, _ = call(t, http.MethodPost, l.URL+"/records", `{nope`); code != http.StatusBadRequest {
		t.Errorf("bad JSON = %d, want 400", code)
	}
	if code, _ = call(t, http.MethodPost, l.URL+"/records", `{"records":[]}`); code != http.StatusBadRequest {
		t.Errorf("empty records = %d, want 400", code)
	}
	if code, _ = call(t, http.MethodPost, l.URL+"/answers", `{"answers":[{"lo":0,"hi":99,"fc":1}]}`); code != http.StatusBadRequest {
		t.Errorf("out-of-range answer = %d, want 400", code)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestOpenRecoversJournal: a journaled server's state survives a
// graceful close and an Abort (no final checkpoint); a shard-count
// change against a pinned layout is refused.
func TestOpenRecoversJournal(t *testing.T) {
	dir := t.TempDir()
	l, err := StartLocal(Config{Journal: dir, Shards: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if l.Server.Shards() != 2 {
		t.Fatalf("Shards = %d, want 2", l.Server.Shards())
	}
	if code, m := call(t, http.MethodPost, l.URL+"/records", recordsBody("a b c", "a b c d", "x y z")); code != http.StatusOK {
		t.Fatalf("POST /records: %d %v", code, m)
	}
	if code, m := call(t, http.MethodPost, l.URL+"/resolve", ""); code != http.StatusOK {
		t.Fatalf("POST /resolve: %d %v", code, m)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := StartLocal(Config{Journal: dir, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !l2.Server.Recovered.FromJournal || l2.Server.Recovered.Records != 3 || l2.Server.Recovered.Round != 1 {
		t.Fatalf("recovery info = %+v", l2.Server.Recovered)
	}
	// Keep working, then lose the machine without a checkpoint.
	if code, m := call(t, http.MethodPost, l2.URL+"/records", recordsBody("p q r")); code != http.StatusOK {
		t.Fatalf("POST /records after recovery: %d %v", code, m)
	}
	if err := l2.Abort(); err != nil {
		t.Fatal(err)
	}
	l3, err := StartLocal(Config{Journal: dir, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if l3.Server.Recovered.Records != 4 {
		t.Fatalf("recovered %d records after abort, want 4", l3.Server.Recovered.Records)
	}
	if err := l3.Close(); err != nil {
		t.Fatal(err)
	}

	// The journal pins 2 shards; 3 must be refused.
	if _, err := Open(Config{Journal: dir, Shards: 3, Seed: 3}); err == nil || !strings.Contains(err.Error(), "re-sharding") {
		t.Fatalf("re-shard error = %v, want re-sharding refusal", err)
	}
}

// TestDegradedCrowd: a server whose resolve path goes through the
// simulated degraded crowd still resolves (slower, deterministically),
// and the fallback answers agree with the primary path.
func TestDegradedCrowd(t *testing.T) {
	l, err := StartLocal(Config{
		Seed: 7,
		Source: DegradedCrowd(SimCrowdConfig{
			Seed:        7,
			BaseLatency: 50 * time.Microsecond,
			Spike:       0.1,
			Drop:        0.2,
			Error:       0.1,
			Timeout:     5 * time.Millisecond,
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if code, m := call(t, http.MethodPost, l.URL+"/records", recordsBody(
		"alpha beta gamma", "alpha beta gamma d", "alpha beta epsilon", "zeta eta theta")); code != http.StatusOK {
		t.Fatalf("POST /records: %d %v", code, m)
	}
	start := time.Now()
	if code, m := call(t, http.MethodPost, l.URL+"/resolve", ""); code != http.StatusOK {
		t.Fatalf("POST /resolve: %d %v", code, m)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("degraded resolve took %v — timeouts not bounding the damage", elapsed)
	}
	if code, m := call(t, http.MethodGet, l.URL+"/clusters", ""); code != http.StatusOK || m["round"].(float64) != 1 {
		t.Fatalf("GET /clusters: %d %v", code, m)
	}
}

// TestPairScoreDeterministic: same seed+pair → same answer; answers
// stay in [0,1).
func TestPairScoreDeterministic(t *testing.T) {
	f, g := PairScore(1), PairScore(1)
	other := PairScore(2)
	diff := 0
	for lo := 0; lo < 20; lo++ {
		for hi := lo + 1; hi < 20; hi++ {
			p := record.Pair{Lo: record.ID(lo), Hi: record.ID(hi)}
			a, b := f(p), g(p)
			if a != b {
				t.Fatalf("PairScore not deterministic at %v: %v vs %v", p, a, b)
			}
			if a < 0 || a >= 1 {
				t.Fatalf("PairScore(%v) = %v out of [0,1)", p, a)
			}
			if a != other(p) {
				diff++
			}
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical answer functions")
	}
}

// TestEndpointsComplete: the advertised endpoint list matches what the
// handler actually routes.
func TestEndpointsComplete(t *testing.T) {
	l, err := StartLocal(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for _, ep := range Endpoints() {
		parts := strings.Fields(ep)
		if len(parts) != 2 {
			t.Fatalf("malformed endpoint %q", ep)
		}
		req, err := http.NewRequest(parts[0], l.URL+parts[1], strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound || resp.StatusCode == http.StatusMethodNotAllowed {
			t.Errorf("%s responded %d — list and mux disagree", ep, resp.StatusCode)
		}
	}
}
