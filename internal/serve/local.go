package serve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"
)

// Local is an in-process server on an ephemeral loopback port: the
// harness behind acdload's self-hosted mode, the scenario suite, and
// the loopback smoke tests. Requests travel through a real TCP socket
// and the real HTTP stack, so measured latencies include everything a
// remote client would pay except the wire.
type Local struct {
	// URL is the server's base URL ("http://127.0.0.1:PORT").
	URL string
	// Server is the engine core, for snapshots and assertions.
	Server *Server

	http *http.Server
	ln   net.Listener
	done chan error

	stopOnce sync.Once
	stopErr  error
	endOnce  sync.Once
	endErr   error
}

// StartLocal opens a server from cfg and serves it on 127.0.0.1:0.
func StartLocal(cfg Config) (*Local, error) {
	srv, err := Open(cfg)
	if err != nil {
		return nil, err
	}
	l, err := Serve(srv)
	if err != nil {
		srv.Close()
		return nil, err
	}
	return l, nil
}

// Serve wraps an already-open Server in a loopback listener.
func Serve(srv *Server) (*Local, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	l := &Local{
		URL:    "http://" + ln.Addr().String(),
		Server: srv,
		http:   hs,
		ln:     ln,
		done:   make(chan error, 1),
	}
	go func() { l.done <- hs.Serve(ln) }()
	return l, nil
}

// Close drains in-flight requests, writes a final checkpoint, and
// releases the engine and its journals — the graceful-shutdown path.
// Use Abort to model losing the machine instead. Close and Abort are
// idempotent and mutually exclusive: whichever runs first wins, later
// calls return its result.
func (l *Local) Close() error {
	l.endOnce.Do(func() {
		err := l.stopHTTP()
		if cerr := l.Server.Checkpoint(); err == nil {
			err = cerr
		}
		if cerr := l.Server.Close(); err == nil {
			err = cerr
		}
		l.endErr = err
	})
	return l.endErr
}

// Abort stops serving and releases file handles WITHOUT the final
// checkpoint — the journal directory is left exactly as the last
// acknowledged write put it, like a process that was SIGKILLed (the
// WAL is fsynced per event, so the on-disk state is the same; only the
// in-memory engine is lost). Crash scenarios that want a harsher image
// copy the journal tree mid-write instead. Idempotent, and shares the
// once-guard with Close.
func (l *Local) Abort() error {
	l.endOnce.Do(func() {
		err := l.stopHTTP()
		if cerr := l.Server.Close(); err == nil {
			err = cerr
		}
		l.endErr = err
	})
	return l.endErr
}

// stopHTTP shuts the HTTP server down gracefully and reaps the serve
// goroutine. Idempotent — the done channel can only be received once.
func (l *Local) stopHTTP() error {
	l.stopOnce.Do(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		err := l.http.Shutdown(ctx)
		if serr := <-l.done; serr != nil && serr != http.ErrServerClosed && err == nil {
			err = fmt.Errorf("serve: %w", serr)
		}
		l.stopErr = err
	})
	return l.stopErr
}
