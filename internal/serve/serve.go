// Package serve is the embeddable HTTP front-end over the sharded
// incremental dedup engine — the engine-and-handlers core of the
// acdserve command, extracted so the acdload workload generator and its
// scenario suite can run real servers in-process (loopback smoke tests,
// crash-image drills) without shelling out to a binary. cmd/acdserve is
// a thin flags-and-lifecycle wrapper around this package; the HTTP API
// the two expose is identical and documented in docs/serving.md.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"acd/internal/crowd"
	"acd/internal/incremental"
	"acd/internal/journal"
	"acd/internal/obs"
	"acd/internal/replica"
	"acd/internal/shard"
)

// Config assembles a server: engine knobs plus durability and crowd
// wiring. The zero value is a volatile 1-shard server with default
// pipeline parameters.
type Config struct {
	// Journal is the durable-state directory; empty means volatile
	// (in-memory only).
	Journal string
	// Shards is the shard count (0 = what the journal has, or 1; an
	// existing journal pins its count and refuses to change it).
	Shards int
	// Tau is the candidate threshold for the incremental blocking
	// index; TauSet marks an explicit zero.
	Tau    float64
	TauSet bool
	// Epsilon is PC-Pivot's wasted-pair budget (0 = default).
	Epsilon float64
	// RefineX is PC-Refine's budget divisor (0 = default).
	RefineX int
	// Seed derives the per-round resolve permutations.
	Seed int64
	// CheckpointEvery is the journal-event cadence of automatic
	// compacted checkpoints (0 disables).
	CheckpointEvery int
	// CommitWindow enables journal group commit: concurrent appends
	// within the window share a single fsync and acks are pipelined.
	// 0 keeps one fsync per event (the historical behavior).
	CommitWindow time.Duration
	// CommitEvents closes a commit group early at this many events
	// (0 = journal.DefaultMaxEvents). Ignored when CommitWindow is 0.
	CommitEvents int
	// CommitBytes closes a commit group early at this many WAL bytes
	// (0 = journal.DefaultMaxBytes). Ignored when CommitWindow is 0.
	CommitBytes int64
	// RotateBytes rotates each live WAL segment past this size;
	// 0 disables rotation.
	RotateBytes int64
	// Obs receives engine and crowd metrics and backs GET /metrics.
	// Nil records nothing (the endpoint then serves an empty snapshot
	// from a fresh recorder).
	Obs *obs.Recorder
	// Source answers residual crowd questions during /resolve. Nil
	// falls back to machine similarity scores. DegradedCrowd builds a
	// simulated source with injected latency and faults for the
	// degraded-crowd load scenarios.
	Source crowd.Source
	// Fleet is a marketplace fleet spec (internal/market.ParseFleet
	// grammar: "id:centsPerHIT:pairsPerHIT:errorRate[:opt...]" entries
	// joined by ';'). When non-empty and Source is nil, residual
	// resolve questions route through a budget-aware marketplace over
	// the specified backends, each answering from the same
	// deterministic pseudo-crowd DegradedCrowd simulates; faulty
	// backends ("drop=", "fault=" options) go through the chaos and
	// retry machinery. Per-backend spend, latency, and accuracy land
	// in the Obs recorder's market/* and crowd/backend/* metrics.
	Fleet string
	// FleetBudget caps total marketplace spend in cents; 0 or negative
	// means unlimited. Once exhausted, questions fall back to the
	// cheapest machine backend (or the machine score prior).
	FleetBudget int
	// Follow is a leader's replication stream URL (its
	// GET /replica/stream endpoint). Non-empty starts the server as a
	// read-only follower: it mirrors the leader's journals into Journal
	// (or memory when Journal is empty), serves stale-ok reads from a
	// warm standby, and refuses writes until POST /replica/promote.
	Follow string
	// ReplicaID names this process in GET /replica/status (optional).
	ReplicaID string
	// ReplicaSource overrides the follower's leader link — tests and
	// scenarios inject an in-process or chaos-wrapped source. Nil uses
	// HTTP long-polling against Follow. Setting it implies follower
	// mode even when Follow is empty.
	ReplicaSource replica.Source
}

// DefaultRotateBytes is the WAL segment rotation size acdserve
// defaults to (4 MiB): large enough that rotation cost (segment close +
// create + directory fsync) stays far off the append hot path even at
// full group-commit throughput, small enough that checkpoint
// compaction reclaims disk promptly. See BENCH_8.json for the
// group-commit measurements behind it.
const DefaultRotateBytes = 4 << 20

// Server owns either a shard group (leader) or a replication follower
// and serves the acdserve HTTP API over it. The group is internally
// synchronized — writes route through per-shard queues and reads load
// an immutable snapshot pointer — so on the hot paths Server adds no
// locking of its own; the mutex only guards the leader/follower role,
// which changes exactly once (at promotion).
type Server struct {
	rec *obs.Recorder
	cfg Config
	// Recovered describes what Open replayed from the journal (zero
	// struct for a fresh or volatile server).
	Recovered RecoveryInfo

	mu       sync.Mutex
	group    *shard.Group      // non-nil when leading
	follower *replica.Follower // non-nil when following
	src      *replica.LocalSource
	runStop  context.CancelFunc
	runDone  chan struct{}
	runErr   error // fatal replication error that stopped the run loop
}

// RecoveryInfo summarizes a journal recovery at Open time.
type RecoveryInfo struct {
	// FromJournal is true when state was recovered from a journal
	// directory (even an empty one).
	FromJournal bool
	// Records and Round are the recovered snapshot's occupancy.
	Records int
	Round   int
}

// Open builds the shard group — recovering from cfg.Journal when one is
// configured — and returns a Server ready to serve. Journal recovery
// errors (including a shard-count mismatch with a pinned layout) are
// returned wrapped with "recovering journal:".
func Open(cfg Config) (*Server, error) {
	rec := cfg.Obs
	if rec == nil {
		rec = obs.New()
	}
	if cfg.Source == nil && cfg.Fleet != "" {
		src, err := marketSource(cfg.Fleet, cfg.FleetBudget, cfg.Seed, rec)
		if err != nil {
			return nil, fmt.Errorf("fleet: %w", err)
		}
		cfg.Source = src
	}
	scfg := shard.Config{
		Shards: cfg.Shards,
		Engine: incremental.Config{
			Tau: cfg.Tau, TauSet: cfg.TauSet,
			Epsilon: cfg.Epsilon, RefineX: cfg.RefineX,
			Seed: cfg.Seed, Obs: cfg.Obs,
			Source:          cfg.Source,
			CheckpointEvery: cfg.CheckpointEvery,
			Commit: journal.GroupPolicy{
				Window:    cfg.CommitWindow,
				MaxEvents: cfg.CommitEvents,
				MaxBytes:  cfg.CommitBytes,
			},
			RotateBytes: cfg.RotateBytes,
		},
	}
	if cfg.Follow != "" || cfg.ReplicaSource != nil {
		return openFollower(cfg, rec, scfg)
	}
	var group *shard.Group
	if cfg.Journal != "" {
		tree, err := journal.NewDirTree(cfg.Journal)
		if err != nil {
			return nil, err
		}
		group, err = shard.Open(scfg, tree)
		if err != nil {
			return nil, fmt.Errorf("recovering journal: %w", err)
		}
		snap := group.Snapshot()
		s := &Server{group: group, rec: rec, cfg: cfg, Recovered: RecoveryInfo{
			FromJournal: true, Records: snap.Records, Round: snap.Round,
		}}
		// Volatile groups have nothing to ship; journaled leaders always do.
		s.src, _ = replica.NewLocalSource(group)
		return s, nil
	}
	group, err := shard.New(scfg)
	if err != nil {
		return nil, err
	}
	return &Server{group: group, rec: rec, cfg: cfg}, nil
}

// state returns the server's current role under the mutex: exactly one
// of group/follower is non-nil.
func (s *Server) state() (*shard.Group, *replica.Follower) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.group, s.follower
}

// Group exposes the underlying shard group (tests and scenarios); nil
// while following.
func (s *Server) Group() *shard.Group {
	g, _ := s.state()
	return g
}

// Follower exposes the replication follower; nil when leading.
func (s *Server) Follower() *replica.Follower {
	_, f := s.state()
	return f
}

// Shards returns the group's shard count.
func (s *Server) Shards() int {
	g, f := s.state()
	if f != nil {
		return f.Shards()
	}
	return g.Shards()
}

// Snapshot returns the current immutable snapshot — the group's when
// leading, the warm standby's when following.
func (s *Server) Snapshot() *shard.Snapshot {
	g, f := s.state()
	if f != nil {
		return f.Standby().Snapshot()
	}
	return g.Snapshot()
}

// Checkpoint writes a compacted checkpoint in every journal. Followers
// no-op: their journals must stay a verbatim copy of the shipped
// stream, and compaction is the leader's call (shipped checkpoints
// install here on their own).
func (s *Server) Checkpoint() error {
	g, f := s.state()
	if f != nil {
		return nil
	}
	return g.Checkpoint()
}

// Close stops replication (when following) and releases the group or
// follower journals (without checkpointing; call Checkpoint first for a
// compact next start).
func (s *Server) Close() error {
	s.stopRun()
	g, f := s.state()
	if f != nil {
		return f.Close()
	}
	return g.Close()
}

// stopRun cancels the follower run loop and waits it out. Safe to call
// in any role, any number of times.
func (s *Server) stopRun() {
	s.mu.Lock()
	stop, done := s.runStop, s.runDone
	s.runStop = nil
	s.mu.Unlock()
	if stop != nil {
		stop()
		<-done
	}
}

// Endpoints lists every HTTP route the Handler serves, in display
// order. docs/serving.md must document each of these; a parity test
// enforces it.
func Endpoints() []string {
	return []string{
		"POST /records",
		"POST /answers",
		"POST /resolve",
		"GET /clusters",
		"GET /healthz",
		"GET /metrics",
		"GET /replica/stream",
		"GET /replica/status",
		"POST /replica/promote",
	}
}

// Handler returns the acdserve HTTP API over this server's group:
//
//	POST /records  {"records":[{"fields":{...},"entity":"l"}]} -> {"ids":[...]}
//	POST /answers  {"answers":[{"lo":0,"hi":1,"fc":0.9,"source":"s"}]} -> {"accepted":n}
//	POST /resolve  -> incremental.ResolveStats (runs one resolve pass)
//	GET  /clusters -> {"round":r,"resolved_up_to":n,"clusters":[[...]]}
//	GET  /healthz  -> {"status":"ok","records":n,"round":r}
//	GET  /metrics  -> observability snapshot (JSON)
//
// GET /clusters and GET /healthz are served from an immutable snapshot
// behind an atomic pointer: reads never take a write lock and return
// immediately even while a resolve pass or an ingest burst is running.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/records", s.handleRecords)
	mux.HandleFunc("/answers", s.handleAnswers)
	mux.HandleFunc("/resolve", s.handleResolve)
	mux.HandleFunc("/clusters", s.handleClusters)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/replica/stream", s.handleReplicaStream)
	mux.HandleFunc("/replica/status", s.handleReplicaStatus)
	mux.HandleFunc("/replica/promote", s.handleReplicaPromote)
	return mux
}

// recordPayload is one record in a POST /records body.
type recordPayload struct {
	Fields map[string]string `json:"fields"`
	Entity string            `json:"entity,omitempty"`
}

// answerPayload is one crowd answer in a POST /answers body.
type answerPayload struct {
	Lo     int     `json:"lo"`
	Hi     int     `json:"hi"`
	FC     float64 `json:"fc"`
	Source string  `json:"source,omitempty"`
}

func (s *Server) handleRecords(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var body struct {
		Records []recordPayload `json:"records"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if len(body.Records) == 0 {
		writeError(w, http.StatusBadRequest, "no records")
		return
	}
	g, ok := s.writable(w)
	if !ok {
		return
	}
	recs := make([]incremental.Record, len(body.Records))
	for i, p := range body.Records {
		recs[i] = incremental.Record{Fields: p.Fields, Entity: p.Entity}
	}
	ids, err := g.Add(recs...)
	if err != nil {
		// A mid-batch journal failure leaves a durable prefix applied;
		// tell the client exactly which records made it in.
		writeJSON(w, http.StatusInternalServerError, map[string]any{
			"error": err.Error(), "committed_ids": ids,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ids": ids, "pending_pairs": g.Snapshot().PendingPairs})
}

func (s *Server) handleAnswers(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var body struct {
		Answers []answerPayload `json:"answers"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	g, ok := s.writable(w)
	if !ok {
		return
	}
	// Validate the whole batch up front: a 400 means nothing was
	// applied. Records are never removed, so a validated answer cannot
	// become invalid before it is applied below.
	for i, a := range body.Answers {
		if err := g.ValidateAnswer(a.Lo, a.Hi, a.FC); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("answer %d: %v", i, err))
			return
		}
	}
	accepted := 0
	for i, a := range body.Answers {
		if err := g.AddAnswer(a.Lo, a.Hi, a.FC, a.Source); err != nil {
			// Validation passed, so this is a journal failure; the first
			// `accepted` answers are already durable.
			writeJSON(w, http.StatusInternalServerError, map[string]any{
				"error": fmt.Sprintf("answer %d: %v", i, err), "committed": accepted,
			})
			return
		}
		accepted++
	}
	writeJSON(w, http.StatusOK, map[string]any{"accepted": accepted, "known": g.Snapshot().Answers})
}

func (s *Server) handleResolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	g, ok := s.writable(w)
	if !ok {
		return
	}
	st, err := g.Resolve(r.Context())
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusRequestTimeout
		}
		writeError(w, status, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleClusters(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	snap := s.readSnapshot(w)
	writeJSON(w, http.StatusOK, map[string]any{
		"round":          snap.Round,
		"resolved_up_to": snap.ResolvedUpTo,
		"records":        snap.Records,
		"shards":         snap.Shards,
		"clusters":       snap.Clusters,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	_, f := s.state()
	status := "ok"
	if f != nil {
		status = "following"
	}
	snap := s.readSnapshot(w)
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  status,
		"records": snap.Records,
		"round":   snap.Round,
		"pending": snap.PendingPairs,
		"shards":  snap.Shards,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if _, f := s.state(); f != nil {
		w.Header().Set(LagHeader, strconv.FormatInt(f.Lag(), 10))
	}
	s.rec.ServeHTTP(w, r)
}

// writeJSON writes v as the JSON response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck — response is best-effort past this point
}

// writeError writes a JSON error envelope.
func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
