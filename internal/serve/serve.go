// Package serve is the embeddable HTTP front-end over the sharded
// incremental dedup engine — the engine-and-handlers core of the
// acdserve command, extracted so the acdload workload generator and its
// scenario suite can run real servers in-process (loopback smoke tests,
// crash-image drills) without shelling out to a binary. cmd/acdserve is
// a thin flags-and-lifecycle wrapper around this package; the HTTP API
// the two expose is identical and documented in docs/serving.md.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"acd/internal/crowd"
	"acd/internal/incremental"
	"acd/internal/journal"
	"acd/internal/obs"
	"acd/internal/shard"
)

// Config assembles a server: engine knobs plus durability and crowd
// wiring. The zero value is a volatile 1-shard server with default
// pipeline parameters.
type Config struct {
	// Journal is the durable-state directory; empty means volatile
	// (in-memory only).
	Journal string
	// Shards is the shard count (0 = what the journal has, or 1; an
	// existing journal pins its count and refuses to change it).
	Shards int
	// Tau is the candidate threshold for the incremental blocking
	// index; TauSet marks an explicit zero.
	Tau    float64
	TauSet bool
	// Epsilon is PC-Pivot's wasted-pair budget (0 = default).
	Epsilon float64
	// RefineX is PC-Refine's budget divisor (0 = default).
	RefineX int
	// Seed derives the per-round resolve permutations.
	Seed int64
	// CheckpointEvery is the journal-event cadence of automatic
	// compacted checkpoints (0 disables).
	CheckpointEvery int
	// CommitWindow enables journal group commit: concurrent appends
	// within the window share a single fsync and acks are pipelined.
	// 0 keeps one fsync per event (the historical behavior).
	CommitWindow time.Duration
	// CommitEvents closes a commit group early at this many events
	// (0 = journal.DefaultMaxEvents). Ignored when CommitWindow is 0.
	CommitEvents int
	// CommitBytes closes a commit group early at this many WAL bytes
	// (0 = journal.DefaultMaxBytes). Ignored when CommitWindow is 0.
	CommitBytes int64
	// RotateBytes rotates each live WAL segment past this size;
	// 0 disables rotation.
	RotateBytes int64
	// Obs receives engine and crowd metrics and backs GET /metrics.
	// Nil records nothing (the endpoint then serves an empty snapshot
	// from a fresh recorder).
	Obs *obs.Recorder
	// Source answers residual crowd questions during /resolve. Nil
	// falls back to machine similarity scores. DegradedCrowd builds a
	// simulated source with injected latency and faults for the
	// degraded-crowd load scenarios.
	Source crowd.Source
}

// DefaultRotateBytes is the WAL segment rotation size acdserve
// defaults to (4 MiB): large enough that rotation cost (segment close +
// create + directory fsync) stays far off the append hot path even at
// full group-commit throughput, small enough that checkpoint
// compaction reclaims disk promptly. See BENCH_8.json for the
// group-commit measurements behind it.
const DefaultRotateBytes = 4 << 20

// Server owns a shard group and serves the acdserve HTTP API over it.
// The group is internally synchronized — writes route through per-shard
// queues and reads load an immutable snapshot pointer — so Server
// itself holds no lock anywhere and its handlers are safe under any
// request concurrency.
type Server struct {
	group *shard.Group
	rec   *obs.Recorder
	// Recovered describes what Open replayed from the journal (zero
	// struct for a fresh or volatile server).
	Recovered RecoveryInfo
}

// RecoveryInfo summarizes a journal recovery at Open time.
type RecoveryInfo struct {
	// FromJournal is true when state was recovered from a journal
	// directory (even an empty one).
	FromJournal bool
	// Records and Round are the recovered snapshot's occupancy.
	Records int
	Round   int
}

// Open builds the shard group — recovering from cfg.Journal when one is
// configured — and returns a Server ready to serve. Journal recovery
// errors (including a shard-count mismatch with a pinned layout) are
// returned wrapped with "recovering journal:".
func Open(cfg Config) (*Server, error) {
	rec := cfg.Obs
	if rec == nil {
		rec = obs.New()
	}
	scfg := shard.Config{
		Shards: cfg.Shards,
		Engine: incremental.Config{
			Tau: cfg.Tau, TauSet: cfg.TauSet,
			Epsilon: cfg.Epsilon, RefineX: cfg.RefineX,
			Seed: cfg.Seed, Obs: cfg.Obs,
			Source:          cfg.Source,
			CheckpointEvery: cfg.CheckpointEvery,
			Commit: journal.GroupPolicy{
				Window:    cfg.CommitWindow,
				MaxEvents: cfg.CommitEvents,
				MaxBytes:  cfg.CommitBytes,
			},
			RotateBytes: cfg.RotateBytes,
		},
	}
	var group *shard.Group
	if cfg.Journal != "" {
		tree, err := journal.NewDirTree(cfg.Journal)
		if err != nil {
			return nil, err
		}
		group, err = shard.Open(scfg, tree)
		if err != nil {
			return nil, fmt.Errorf("recovering journal: %w", err)
		}
		snap := group.Snapshot()
		return &Server{group: group, rec: rec, Recovered: RecoveryInfo{
			FromJournal: true, Records: snap.Records, Round: snap.Round,
		}}, nil
	}
	group, err := shard.New(scfg)
	if err != nil {
		return nil, err
	}
	return &Server{group: group, rec: rec}, nil
}

// Group exposes the underlying shard group (tests and scenarios).
func (s *Server) Group() *shard.Group { return s.group }

// Shards returns the group's shard count.
func (s *Server) Shards() int { return s.group.Shards() }

// Snapshot returns the group's current immutable snapshot.
func (s *Server) Snapshot() *shard.Snapshot { return s.group.Snapshot() }

// Checkpoint writes a compacted checkpoint in every journal.
func (s *Server) Checkpoint() error { return s.group.Checkpoint() }

// Close releases the group and its journals (without checkpointing;
// call Checkpoint first for a compact next start).
func (s *Server) Close() error { return s.group.Close() }

// Endpoints lists every HTTP route the Handler serves, in display
// order. docs/serving.md must document each of these; a parity test
// enforces it.
func Endpoints() []string {
	return []string{
		"POST /records",
		"POST /answers",
		"POST /resolve",
		"GET /clusters",
		"GET /healthz",
		"GET /metrics",
	}
}

// Handler returns the acdserve HTTP API over this server's group:
//
//	POST /records  {"records":[{"fields":{...},"entity":"l"}]} -> {"ids":[...]}
//	POST /answers  {"answers":[{"lo":0,"hi":1,"fc":0.9,"source":"s"}]} -> {"accepted":n}
//	POST /resolve  -> incremental.ResolveStats (runs one resolve pass)
//	GET  /clusters -> {"round":r,"resolved_up_to":n,"clusters":[[...]]}
//	GET  /healthz  -> {"status":"ok","records":n,"round":r}
//	GET  /metrics  -> observability snapshot (JSON)
//
// GET /clusters and GET /healthz are served from an immutable snapshot
// behind an atomic pointer: reads never take a write lock and return
// immediately even while a resolve pass or an ingest burst is running.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/records", s.handleRecords)
	mux.HandleFunc("/answers", s.handleAnswers)
	mux.HandleFunc("/resolve", s.handleResolve)
	mux.HandleFunc("/clusters", s.handleClusters)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.Handle("/metrics", s.rec)
	return mux
}

// recordPayload is one record in a POST /records body.
type recordPayload struct {
	Fields map[string]string `json:"fields"`
	Entity string            `json:"entity,omitempty"`
}

// answerPayload is one crowd answer in a POST /answers body.
type answerPayload struct {
	Lo     int     `json:"lo"`
	Hi     int     `json:"hi"`
	FC     float64 `json:"fc"`
	Source string  `json:"source,omitempty"`
}

func (s *Server) handleRecords(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var body struct {
		Records []recordPayload `json:"records"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if len(body.Records) == 0 {
		writeError(w, http.StatusBadRequest, "no records")
		return
	}
	recs := make([]incremental.Record, len(body.Records))
	for i, p := range body.Records {
		recs[i] = incremental.Record{Fields: p.Fields, Entity: p.Entity}
	}
	ids, err := s.group.Add(recs...)
	if err != nil {
		// A mid-batch journal failure leaves a durable prefix applied;
		// tell the client exactly which records made it in.
		writeJSON(w, http.StatusInternalServerError, map[string]any{
			"error": err.Error(), "committed_ids": ids,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ids": ids, "pending_pairs": s.group.Snapshot().PendingPairs})
}

func (s *Server) handleAnswers(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var body struct {
		Answers []answerPayload `json:"answers"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	// Validate the whole batch up front: a 400 means nothing was
	// applied. Records are never removed, so a validated answer cannot
	// become invalid before it is applied below.
	for i, a := range body.Answers {
		if err := s.group.ValidateAnswer(a.Lo, a.Hi, a.FC); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("answer %d: %v", i, err))
			return
		}
	}
	accepted := 0
	for i, a := range body.Answers {
		if err := s.group.AddAnswer(a.Lo, a.Hi, a.FC, a.Source); err != nil {
			// Validation passed, so this is a journal failure; the first
			// `accepted` answers are already durable.
			writeJSON(w, http.StatusInternalServerError, map[string]any{
				"error": fmt.Sprintf("answer %d: %v", i, err), "committed": accepted,
			})
			return
		}
		accepted++
	}
	writeJSON(w, http.StatusOK, map[string]any{"accepted": accepted, "known": s.group.Snapshot().Answers})
}

func (s *Server) handleResolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	st, err := s.group.Resolve(r.Context())
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusRequestTimeout
		}
		writeError(w, status, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleClusters(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	snap := s.group.Snapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"round":          snap.Round,
		"resolved_up_to": snap.ResolvedUpTo,
		"records":        snap.Records,
		"shards":         snap.Shards,
		"clusters":       snap.Clusters,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.group.Snapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"records": snap.Records,
		"round":   snap.Round,
		"pending": snap.PendingPairs,
		"shards":  snap.Shards,
	})
}

// writeJSON writes v as the JSON response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck — response is best-effort past this point
}

// writeError writes a JSON error envelope.
func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
