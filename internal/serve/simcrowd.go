package serve

import (
	"hash/fnv"
	"time"

	"acd/internal/crowd"
	"acd/internal/market"
	"acd/internal/obs"
	"acd/internal/record"
)

// SimCrowdConfig parameterizes the simulated crowd source behind the
// degraded-crowd scenarios: a deterministic pseudo-crowd whose answers
// are a stable hash of the pair, wrapped in the PR 4 fault machinery —
// ChaosSource injects latency spikes, drops, and transient errors on
// the wall clock; ReliableSource retries, hedges, and degrades to the
// hash answer when the deadline passes. Because the injected latency is
// real (the resolve handler actually waits), GET-side snapshot reads
// can be measured against a server whose resolve path is crawling.
type SimCrowdConfig struct {
	// Seed drives answers and every fault draw.
	Seed int64
	// BaseLatency is the median simulated answer latency (default
	// 500µs — per-question, so even small resolves feel a slow crowd).
	BaseLatency time.Duration
	// Spike, Drop and Error are the ChaosSource fault probabilities
	// (spike multiplies latency 25×; a drop forces a timeout+retry).
	Spike float64
	Drop  float64
	Error float64
	// Timeout and Retries bound each question (defaults 50ms / 1
	// retry; generous crowd defaults would wedge a load scenario).
	Timeout time.Duration
	Retries int
}

// DegradedCrowd builds the simulated degraded crowd source from cfg.
func DegradedCrowd(cfg SimCrowdConfig) crowd.Source {
	if cfg.BaseLatency == 0 {
		cfg.BaseLatency = 500 * time.Microsecond
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 50 * time.Millisecond
	}
	if cfg.Retries == 0 {
		cfg.Retries = 1
	}
	answer := PairScore(cfg.Seed)
	chaos := crowd.NewChaos(
		crowd.SourceFunc{Fn: answer, Setting: crowd.ThreeWorker(cfg.Seed)},
		crowd.ChaosConfig{
			Seed:        cfg.Seed,
			BaseLatency: cfg.BaseLatency,
			SpikeProb:   cfg.Spike,
			DropProb:    cfg.Drop,
			ErrorProb:   cfg.Error,
		})
	// Backoff must scale with the timeout: the library default (200ms)
	// is sized for a real crowd, and at a ~10% fault rate it would add
	// ~20ms to the *average* question — dwarfing the latency being
	// simulated.
	backoff := cfg.Timeout / 4
	if backoff < 100*time.Microsecond {
		backoff = 100 * time.Microsecond
	}
	return crowd.NewReliable(chaos, crowd.ReliableConfig{
		Timeout:    cfg.Timeout,
		Retries:    cfg.Retries,
		Backoff:    backoff,
		MaxBackoff: cfg.Timeout,
		Seed:       cfg.Seed,
		Fallback:   answer,
		// Clock nil = wall clock: the injected latency is real.
	})
}

// marketSource builds the marketplace source behind Config.Fleet: the
// parsed fleet's backends all answer from the same deterministic
// pseudo-crowd DegradedCrowd simulates (each with its own calibrated
// noise), and the router's spend and per-backend accounting flow into
// rec as market/* and crowd/backend/* metrics, which GET /metrics then
// serves. budget <= 0 means unlimited.
func marketSource(spec string, budget int, seed int64, rec *obs.Recorder) (crowd.Source, error) {
	backends, err := market.Fleet(spec, PairScore(seed), seed)
	if err != nil {
		return nil, err
	}
	b := market.Unlimited
	if budget > 0 {
		b = budget
	}
	m := market.New(market.Config{
		Backends:     backends,
		BudgetCents:  b,
		Order:        market.OrderConfidence,
		ShortCircuit: true,
		Seed:         seed,
	})
	m.SetRecorder(rec)
	return m, nil
}

// PairScore returns the deterministic pseudo-crowd answer function: a
// stable hash of (seed, pair) mapped to [0,1). The same pair always
// gets the same answer, so repeated runs and the timeout fallback agree
// with the primary path.
func PairScore(seed int64) func(record.Pair) float64 {
	return func(p record.Pair) float64 {
		h := fnv.New64a()
		var buf [24]byte
		put := func(off int, v uint64) {
			for i := 0; i < 8; i++ {
				buf[off+i] = byte(v >> (8 * i))
			}
		}
		put(0, uint64(seed))
		put(8, uint64(p.Lo))
		put(16, uint64(p.Hi))
		h.Write(buf[:])
		return float64(h.Sum64()%1_000_000) / 1_000_000
	}
}
