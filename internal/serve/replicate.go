package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"acd/internal/journal"
	"acd/internal/obs"
	"acd/internal/replica"
	"acd/internal/shard"
)

// LagHeader is the response header followers attach to stale-ok reads
// (GET /clusters, /healthz, /metrics): the number of committed leader
// events not yet folded into the standby the response was served from.
// 0 means the read is as fresh as the leader's last durable write at
// fetch time; the value can only ever under-state freshness.
const LagHeader = "X-Replication-Lag"

// followWait is the server-side long-poll wait followers request per
// fetch: long enough that an idle link costs one open request at a
// time, short enough that lag and epoch telemetry stay current.
const followWait = time.Second

// openFollower builds a Server in follower mode: it mirrors the
// leader's journals locally (durably under cfg.Journal, or in memory
// when empty), seeds the warm standby, and starts the replication run
// loop. The returned server refuses writes until promoted.
func openFollower(cfg Config, rec *obs.Recorder, scfg shard.Config) (*Server, error) {
	var tree journal.Tree
	if cfg.Journal != "" {
		t, err := journal.NewDirTree(cfg.Journal)
		if err != nil {
			return nil, err
		}
		tree = t
	} else {
		tree = journal.NewMemTree()
	}
	src := cfg.ReplicaSource
	if src == nil {
		src = &replica.HTTPSource{Base: cfg.Follow}
	}
	fol, err := replica.NewFollower(context.Background(), replica.Config{
		Shard:  scfg,
		Tree:   tree,
		Source: src,
		Wait:   followWait,
	})
	if err != nil {
		return nil, fmt.Errorf("following %s: %w", cfg.Follow, err)
	}
	snap := fol.Standby().Snapshot()
	s := &Server{
		rec: rec, cfg: cfg, follower: fol,
		Recovered: RecoveryInfo{
			FromJournal: cfg.Journal != "",
			Records:     snap.Records,
			Round:       snap.Round,
		},
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.runStop = cancel
	s.runDone = make(chan struct{})
	go func() {
		defer close(s.runDone)
		err := fol.Run(ctx)
		s.mu.Lock()
		s.runErr = err
		s.mu.Unlock()
	}()
	return s, nil
}

// writable returns the leader group for a write handler, or answers 503
// and returns false when this server is a read-only follower.
func (s *Server) writable(w http.ResponseWriter) (*shard.Group, bool) {
	g, _ := s.state()
	if g == nil {
		writeError(w, http.StatusServiceUnavailable, "read-only follower: send writes to the leader (or POST /replica/promote)")
		return nil, false
	}
	return g, true
}

// readSnapshot returns the snapshot a stale-ok read serves — the
// group's when leading, the standby's (plus the lag header) when
// following.
func (s *Server) readSnapshot(w http.ResponseWriter) *shard.Snapshot {
	g, f := s.state()
	if f != nil {
		w.Header().Set(LagHeader, strconv.FormatInt(f.Lag(), 10))
		return f.Standby().Snapshot()
	}
	return g.Snapshot()
}

// handleReplicaStream serves the leader's journal tails to followers
// (see replica.Handler). Followers and volatile leaders answer 503:
// neither has a committed stream to ship.
func (s *Server) handleReplicaStream(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	src := s.src
	s.mu.Unlock()
	if src == nil {
		writeError(w, http.StatusServiceUnavailable, "no replication stream here: followers and journal-less servers do not ship journals")
		return
	}
	(&replica.Handler{Source: src}).ServeHTTP(w, r)
}

// handleReplicaStatus reports the server's replication role: mode,
// epoch, and — for followers — per-journal positions and total lag.
func (s *Server) handleReplicaStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.mu.Lock()
	g, f, src, runErr := s.group, s.follower, s.src, s.runErr
	s.mu.Unlock()
	resp := map[string]any{"replica_id": s.cfg.ReplicaID}
	if f != nil {
		st := f.Status()
		resp["mode"] = "follower"
		resp["epoch"] = st.Epoch
		resp["lag"] = st.Lag
		resp["journals"] = st.Journals
		if runErr != nil {
			resp["error"] = runErr.Error()
		}
	} else {
		resp["mode"] = "leader"
		resp["epoch"] = g.Epoch()
		resp["shards"] = g.Shards()
		resp["streaming"] = src != nil
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleReplicaPromote turns a follower into the leader. The optional
// body {"source_journal": DIR} names the deposed leader's journal
// directory (on shared or recovered storage): promotion then fences its
// epoch on disk and replays whatever committed tail it still holds, so
// no acknowledged write is lost. Without it the follower's own mirror
// is the new history. Leaders answer 409.
func (s *Server) handleReplicaPromote(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var body struct {
		SourceJournal string `json:"source_journal"`
	}
	if r.Body != nil {
		// An empty body means "promote from my own mirror"; only a
		// present-but-malformed one is an error.
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil && !errors.Is(err, io.EOF) {
			writeError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
			return
		}
	}
	s.mu.Lock()
	f := s.follower
	s.mu.Unlock()
	if f == nil {
		writeError(w, http.StatusConflict, "already the leader")
		return
	}
	// Stop pulling before the swap: Promote refuses a closed follower,
	// so a racing second promote fails cleanly below.
	s.stopRun()
	var old journal.Tree
	if body.SourceJournal != "" {
		t, err := journal.NewDirTree(body.SourceJournal)
		if err != nil {
			writeError(w, http.StatusBadRequest, "source_journal: "+err.Error())
			return
		}
		old = t
	}
	g, err := f.Promote(old)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "promote: "+err.Error())
		return
	}
	s.mu.Lock()
	s.group = g
	s.follower = nil
	s.runErr = nil
	s.src, _ = replica.NewLocalSource(g)
	s.mu.Unlock()
	snap := g.Snapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"mode":    "leader",
		"epoch":   g.Epoch(),
		"records": snap.Records,
		"round":   snap.Round,
	})
}
