package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"acd/internal/journal"
	"acd/internal/testutil"
)

// httpJSONCall issues one request and decodes the JSON response.
func httpJSONCall(t *testing.T, method, url, body string) (int, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("%s %s: decoding response: %v", method, url, err)
	}
	return resp.StatusCode, m
}

func postRecords(t *testing.T, base string, fields ...string) []any {
	t.Helper()
	var recs []string
	for _, f := range fields {
		recs = append(recs, fmt.Sprintf(`{"fields":{"name":%q}}`, f))
	}
	code, m := httpJSONCall(t, http.MethodPost, base+"/records",
		`{"records":[`+strings.Join(recs, ",")+`]}`)
	if code != http.StatusOK {
		t.Fatalf("POST /records: %d %v", code, m)
	}
	return m["ids"].([]any)
}

// waitCaughtUp polls the follower's /clusters until it reports the
// wanted record count with zero replication lag.
func waitCaughtUp(t *testing.T, base string, wantRecords int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/clusters")
		if err != nil {
			t.Fatal(err)
		}
		var m map[string]any
		lag := resp.Header.Get(LagHeader)
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if lag == "" {
			t.Fatalf("follower read has no %s header", LagHeader)
		}
		if int(m["records"].(float64)) >= wantRecords && lag == "0" {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("follower never caught up to %d records", wantRecords)
}

// TestFollowerServesStaleReads: a follower tracking a live leader over
// real HTTP serves /clusters, /healthz, and /metrics from its standby
// with a lag header, refuses writes with 503, and reports its role on
// /replica/status.
func TestFollowerServesStaleReads(t *testing.T) {
	baseline := testutil.Baseline()
	leader, err := StartLocal(Config{Journal: t.TempDir(), Shards: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	follower, err := StartLocal(Config{
		Journal:   t.TempDir(),
		Follow:    leader.URL + "/replica/stream",
		ReplicaID: "standby-1",
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()

	postRecords(t, leader.URL,
		"golden dragon palace chinese broadway",
		"golden dragon palace chinese broadway ave",
		"harbor seafood grill market st",
	)
	if code, m := httpJSONCall(t, http.MethodPost, leader.URL+"/resolve", ""); code != http.StatusOK {
		t.Fatalf("POST /resolve: %d %v", code, m)
	}
	waitCaughtUp(t, follower.URL, 3)

	// The standby's clustering matches the leader's snapshot.
	want, _ := json.Marshal(leader.Server.Snapshot().Clusters)
	got, _ := json.Marshal(follower.Server.Snapshot().Clusters)
	if !bytes.Equal(want, got) {
		t.Errorf("follower clusters %s, leader %s", got, want)
	}

	// Writes are refused while following.
	code, m := httpJSONCall(t, http.MethodPost, follower.URL+"/records",
		`{"records":[{"fields":{"name":"x"}}]}`)
	if code != http.StatusServiceUnavailable {
		t.Errorf("follower POST /records: %d %v, want 503", code, m)
	}
	if code, _ := httpJSONCall(t, http.MethodPost, follower.URL+"/resolve", ""); code != http.StatusServiceUnavailable {
		t.Errorf("follower POST /resolve: %d, want 503", code)
	}

	// /metrics and /healthz also carry the lag header on a follower.
	resp, err := http.Get(follower.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get(LagHeader) == "" {
		t.Errorf("/metrics on follower missing %s", LagHeader)
	}
	if code, m := httpJSONCall(t, http.MethodGet, follower.URL+"/healthz", ""); code != http.StatusOK || m["status"] != "following" {
		t.Errorf("follower /healthz: %d %v", code, m)
	}

	// Roles on /replica/status.
	if _, m := httpJSONCall(t, http.MethodGet, leader.URL+"/replica/status", ""); m["mode"] != "leader" || m["streaming"] != true {
		t.Errorf("leader status %v", m)
	}
	if _, m := httpJSONCall(t, http.MethodGet, follower.URL+"/replica/status", ""); m["mode"] != "follower" || m["replica_id"] != "standby-1" {
		t.Errorf("follower status %v", m)
	}

	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}
	if err := leader.Close(); err != nil {
		t.Fatal(err)
	}
	testutil.CheckGoroutines(t, baseline)
}

// TestPromoteEndToEnd: the leader dies, the follower is promoted with
// the old journal directory, and the promoted server owns the full
// acknowledged history, fences the old epoch on disk, and takes writes.
func TestPromoteEndToEnd(t *testing.T) {
	baseline := testutil.Baseline()
	leaderDir := filepath.Join(t.TempDir(), "leader")
	leader, err := StartLocal(Config{Journal: leaderDir, Shards: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Abort()
	follower, err := StartLocal(Config{
		Journal: filepath.Join(t.TempDir(), "standby"),
		Follow:  leader.URL + "/replica/stream",
		Seed:    5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()

	postRecords(t, leader.URL,
		"chez olive bistro french sunset blvd",
		"chez olive bistro french sunset",
	)
	waitCaughtUp(t, follower.URL, 2)
	// One more write the follower may not have seen: promotion must
	// recover it from the old journal directory.
	postRecords(t, leader.URL, "harbor seafood grill market st")
	if err := leader.Abort(); err != nil {
		t.Fatal(err)
	}

	code, m := httpJSONCall(t, http.MethodPost, follower.URL+"/replica/promote",
		fmt.Sprintf(`{"source_journal":%q}`, leaderDir))
	if code != http.StatusOK || m["mode"] != "leader" {
		t.Fatalf("promote: %d %v", code, m)
	}
	if int(m["records"].(float64)) != 3 {
		t.Errorf("promoted with %v records, want 3 (tail replayed)", m["records"])
	}
	if int64(m["epoch"].(float64)) < 1 {
		t.Errorf("promoted epoch %v, want >= 1", m["epoch"])
	}

	// The old tree is fenced at (at least) the promoted epoch: a
	// revenant leader reopening it must stand down.
	oldTree, err := journal.NewDirTree(leaderDir)
	if err != nil {
		t.Fatal(err)
	}
	oldEpoch, err := journal.ReadEpoch(oldTree.Root())
	if err != nil {
		t.Fatal(err)
	}
	if oldEpoch < int64(m["epoch"].(float64)) {
		t.Errorf("old tree epoch %d below promoted %v", oldEpoch, m["epoch"])
	}

	// A second promote is refused: this server already leads.
	if code, _ := httpJSONCall(t, http.MethodPost, follower.URL+"/replica/promote", ""); code != http.StatusConflict {
		t.Errorf("second promote: %d, want 409", code)
	}

	// The promoted leader takes writes and streams to new followers.
	postRecords(t, follower.URL, "golden dragon palace chinese broadway")
	if code, m := httpJSONCall(t, http.MethodGet, follower.URL+"/clusters", ""); code != http.StatusOK || int(m["records"].(float64)) != 4 {
		t.Fatalf("promoted /clusters: %d %v", code, m)
	}
	if _, m := httpJSONCall(t, http.MethodGet, follower.URL+"/replica/status", ""); m["mode"] != "leader" || m["streaming"] != true {
		t.Errorf("promoted status %v", m)
	}

	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}
	testutil.CheckGoroutines(t, baseline)
}
