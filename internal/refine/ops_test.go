package refine

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"acd/internal/cluster"
	"acd/internal/record"
)

func TestEnumerateCompleteness(t *testing.T) {
	// Clusters {0,1}, {2,3}, {4}; candidates: (0,1) within, (1,2) and
	// (3,4) across, (0,4) across.
	scores := map[record.Pair]float64{
		record.MakePair(0, 1): 0.9,
		record.MakePair(1, 2): 0.6,
		record.MakePair(3, 4): 0.7,
		record.MakePair(0, 4): 0.5,
	}
	cands, sess := instance(5, scores)
	c := cluster.MustFromSets(5, [][]record.ID{{0, 1}, {2, 3}, {4}})
	st := newState(c, cands, sess)
	ops := st.enumerate()

	var splits, merges []Op
	for _, s := range ops {
		if s.op.Kind == SplitOp {
			splits = append(splits, s.op)
		} else {
			merges = append(merges, s.op)
		}
	}
	// Splits: one per record in a cluster of size ≥ 2 → records 0,1,2,3.
	if len(splits) != 4 {
		t.Errorf("%d split ops, want 4: %v", len(splits), splits)
	}
	// Merges: cluster pairs connected by candidate edges: {0,1}×{2,3}
	// via (1,2); {2,3}×{4} via (3,4); {0,1}×{4} via (0,4) → 3 merges.
	if len(merges) != 3 {
		t.Errorf("%d merge ops, want 3: %v", len(merges), merges)
	}
	// No duplicate merge for multiple edges between the same clusters.
	seen := map[[2]int]bool{}
	for _, m := range merges {
		key := [2]int{m.A, m.B}
		if seen[key] {
			t.Errorf("duplicate merge op %v", m)
		}
		seen[key] = true
	}
}

func TestSortByRatioOrderingAndFilter(t *testing.T) {
	ops := []scoredOp{
		{op: Op{Kind: SplitOp, Record: 1, A: 0}, bStar: 1.0, cost: 2},  // ratio 0.5
		{op: Op{Kind: MergeOp, A: 1, B: 2}, bStar: 3.0, cost: 2},       // ratio 1.5
		{op: Op{Kind: SplitOp, Record: 2, A: 3}, bStar: -1.0, cost: 1}, // negative: filtered
		{op: Op{Kind: MergeOp, A: 4, B: 5}, bStar: 2.0, cost: 0},       // zero-cost: filtered
		{op: Op{Kind: SplitOp, Record: 3, A: 6}, bStar: 0.5, cost: 1},  // ratio 0.5 (tie)
	}
	ranked := sortByRatio(ops)
	if len(ranked) != 3 {
		t.Fatalf("ranked %d ops, want 3", len(ranked))
	}
	if ranked[0].op.Kind != MergeOp || ranked[0].op.A != 1 {
		t.Errorf("best op = %v, want merge(C1,C2)", ranked[0].op)
	}
	// Tie at ratio 0.5 broken deterministically: SplitOp (kind 0) before
	// MergeOp, then by cluster index.
	if ranked[1].op.Kind != SplitOp || ranked[2].op.Kind != SplitOp {
		t.Errorf("tie-break wrong: %v, %v", ranked[1].op, ranked[2].op)
	}
	if ranked[1].op.A > ranked[2].op.A {
		t.Errorf("tie-break by cluster index wrong")
	}
	// Determinism.
	again := sortByRatio(ops)
	if !reflect.DeepEqual(opsOf(ranked), opsOf(again)) {
		t.Errorf("sortByRatio not deterministic")
	}
}

func opsOf(s []scoredOp) []Op {
	out := make([]Op, len(s))
	for i, x := range s {
		out[i] = x.op
	}
	return out
}

func TestExactBenefitPanicsOnUnknown(t *testing.T) {
	scores := map[record.Pair]float64{record.MakePair(0, 1): 0.9}
	cands, sess := instance(2, scores)
	c := cluster.MustFromSets(2, [][]record.ID{{0, 1}})
	st := newState(c, cands, sess)
	defer func() {
		if recover() == nil {
			t.Errorf("exactBenefit with unknown pairs should panic")
		}
	}()
	st.exactBenefit(Op{Kind: SplitOp, Record: 0, A: 0})
}

func TestEstimateModes(t *testing.T) {
	scores := map[record.Pair]float64{
		record.MakePair(0, 1): 0.9, // known below
		record.MakePair(0, 2): 0.4, // unknown candidate
	}
	cands, sess := instance(3, scores)
	sess.Ask([]record.Pair{record.MakePair(0, 1)})
	c := cluster.MustFromSets(3, [][]record.ID{{0, 1, 2}})

	st := newState(c, cands, sess)
	// Known pair: exact.
	if fc, exact := st.estimate(record.MakePair(0, 1)); !exact || fc != 0.9 {
		t.Errorf("known pair estimate = %v/%v", fc, exact)
	}
	// Pruned pair: exactly 0.
	if fc, exact := st.estimate(record.MakePair(1, 2)); !exact || fc != 0 {
		t.Errorf("pruned pair estimate = %v/%v", fc, exact)
	}
	// Unknown candidate, histogram mode: single-sample histogram maps
	// everything to 0.9.
	if fc, exact := st.estimate(record.MakePair(0, 2)); exact || fc != 0.9 {
		t.Errorf("histogram estimate = %v/%v, want 0.9/false", fc, exact)
	}
	// Identity mode uses the machine score directly.
	st.mode = IdentityEstimator
	if fc, _ := st.estimate(record.MakePair(0, 2)); fc != 0.4 {
		t.Errorf("identity estimate = %v, want machine score 0.4", fc)
	}
}

func TestOpString(t *testing.T) {
	s := Op{Kind: SplitOp, Record: 7, A: 2}.String()
	m := Op{Kind: MergeOp, A: 1, B: 3}.String()
	if s != "split(7 from C2)" || m != "merge(C1, C3)" {
		t.Errorf("op strings: %q, %q", s, m)
	}
}

// TestCacheMatchesFreshEnumeration: after arbitrary interleavings of
// applies and crowd answers, the cached enumeration must equal what a
// fresh (cache-less) state computes.
func TestCacheMatchesFreshEnumeration(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, scores, start := randomRefineInstance(rng)
		cands, sess := instance(n, scores)
		st := newState(start, cands, sess)

		for step := 0; step < 8; step++ {
			switch rng.Intn(3) {
			case 0: // apply a random enumerated op
				ops := st.enumerate()
				if len(ops) > 0 {
					st.apply(ops[rng.Intn(len(ops))].op)
				}
			case 1: // crowdsource a random unknown candidate
				var unknown []record.Pair
				for _, sp := range cands.Pairs {
					if _, ok := sess.Known(sp.Pair); !ok {
						unknown = append(unknown, sp.Pair)
					}
				}
				if len(unknown) > 0 {
					sess.Ask(unknown[:1+rng.Intn(len(unknown))])
					st.rebuildHistogram()
				}
			case 2: // just re-enumerate (warms the cache)
				st.enumerate()
			}

			got := st.enumerate()
			fresh := newState(st.c, cands, sess)
			fresh.mode = st.mode
			want := fresh.enumerate()
			if len(got) != len(want) {
				return false
			}
			byKey := map[opKey]scoredOp{}
			for _, s := range want {
				byKey[keyOf(s.op)] = s
			}
			for _, s := range got {
				w, ok := byKey[keyOf(s.op)]
				if !ok {
					return false
				}
				if math.Abs(s.bStar-w.bStar) > 1e-9 || s.cost != w.cost {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestCacheHitAfterUnrelatedApply: an op untouched by an apply keeps its
// cached score (observable via the version counters).
func TestCacheHitAfterUnrelatedApply(t *testing.T) {
	scores := map[record.Pair]float64{
		record.MakePair(0, 1): 0.9,
		record.MakePair(2, 3): 0.8,
		record.MakePair(0, 2): 0.4, // candidate, crowdsourced later
	}
	cands, sess := instance(4, scores)
	sess.Ask([]record.Pair{record.MakePair(0, 1), record.MakePair(2, 3)})
	c := cluster.MustFromSets(4, [][]record.ID{{0, 1}, {2, 3}})
	st := newState(c, cands, sess)
	st.enumerate() // warm

	splitIn23 := Op{Kind: SplitOp, Record: 2, A: c.Assignment(2)}
	if _, ok := st.cachedScore(splitIn23); !ok {
		t.Fatalf("cache cold after enumerate")
	}
	// merge({0,1},{2,3}) has cost 1: its cross pair (0,2) is an
	// uncrowdsourced candidate, so its score leans on the estimator.
	mergeAcross := Op{Kind: MergeOp, A: c.Assignment(0), B: c.Assignment(2)}
	if s, ok := st.cachedScore(mergeAcross); !ok || s.cost != 1 {
		t.Fatalf("merge not cached with cost 1 after enumerate")
	}
	// New answers shift the estimator: positive-cost scores invalidate.
	// Zero-cost scores are exact — every pair they read is crowdsourced
	// or pruned, and neither can change — so they survive the epoch.
	sess.Ask([]record.Pair{record.MakePair(0, 2)})
	if _, ok := st.cachedScore(mergeAcross); ok {
		t.Errorf("new answers did not invalidate the estimated (cost > 0) score")
	}
	if _, ok := st.cachedScore(splitIn23); !ok {
		t.Errorf("new answers invalidated an exact (cost 0) score")
	}
	// Splitting record 0 touches only cluster {0,1}.
	st.apply(Op{Kind: SplitOp, Record: 0, A: c.Assignment(0)})
	if _, ok := st.cachedScore(splitIn23); !ok {
		t.Errorf("unrelated op invalidated")
	}
	if _, ok := st.cachedScore(Op{Kind: SplitOp, Record: 1, A: c.Assignment(1)}); ok {
		t.Errorf("touched-cluster op not invalidated")
	}
}

// TestCrowdBOEMAsksFullCandidateSet: the Section 5.1 cost argument.
func TestCrowdBOEMCost(t *testing.T) {
	scores := map[record.Pair]float64{
		record.MakePair(0, 1): 1.0,
		record.MakePair(1, 2): 0.0,
		record.MakePair(2, 3): 1.0,
		record.MakePair(0, 3): 0.0,
	}
	cands, sess := instance(4, scores)
	c := cluster.NewSingletons(4)
	got := CrowdBOEM(c, cands, sess)
	if sess.Stats().Pairs != len(cands.Pairs) {
		t.Errorf("Crowd-BOEM asked %d pairs, want the full |S| = %d",
			sess.Stats().Pairs, len(cands.Pairs))
	}
	want := cluster.MustFromSets(4, [][]record.ID{{0, 1}, {2, 3}})
	if !cluster.Equal(got, want) {
		t.Errorf("Crowd-BOEM clusters = %v", got.Sets())
	}
}
