package refine

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"acd/internal/cluster"
	"acd/internal/crowd"
	"acd/internal/pruning"
	"acd/internal/record"
)

// instance builds a candidate set + fixed crowd answers for tests.
func instance(n int, scores map[record.Pair]float64) (*pruning.Candidates, *crowd.Session) {
	machine := cluster.Scores{}
	for p, fc := range scores {
		// Machine score mirrors the crowd score so histogram estimates
		// are sensible; any value above tau keeps the pair a candidate.
		machine[p] = fc
		if machine[p] <= 0.31 {
			machine[p] = 0.31
		}
	}
	cands := pruning.FromScores(n, machine, 0.3)
	return cands, crowd.NewSession(crowd.FixedAnswers(scores, crowd.Config{}))
}

func TestIndependent(t *testing.T) {
	s1 := Op{Kind: SplitOp, Record: 1, A: 0}
	s2 := Op{Kind: SplitOp, Record: 2, A: 0}
	s3 := Op{Kind: SplitOp, Record: 5, A: 3}
	m12 := Op{Kind: MergeOp, A: 1, B: 2}
	m03 := Op{Kind: MergeOp, A: 0, B: 3}
	cases := []struct {
		a, b Op
		want bool
	}{
		{s1, s2, false}, // same source cluster
		{s1, s3, true},
		{s1, m12, true},
		{s1, m03, false}, // split touches cluster 0, merge uses it
		{m12, m03, true},
		{m03, m03, false},
	}
	for _, c := range cases {
		if got := Independent(c.a, c.b); got != c.want {
			t.Errorf("Independent(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// TestBenefitEquations checks Equations 5 and 6 on the paper's Figures 3
// and 4.
func TestBenefitEquations(t *testing.T) {
	// Figure 3: cluster {a,b,c,d} (=0,1,2,3); split d with
	// f_c(a,d)=0.4, f_c(b,d)=0.3, f_c(c,d)=0.5 → benefit
	// (1-0.8)+(1-0.6)+(1-1.0) = 0.2+0.4+0 = 0.6... the paper's figure
	// gives benefit 0.2; its exact edge values are in the (unreadable)
	// figure, so we verify the formula itself on chosen values instead.
	scores := map[record.Pair]float64{
		record.MakePair(0, 3): 0.4,
		record.MakePair(1, 3): 0.3,
		record.MakePair(2, 3): 0.5,
	}
	cands, sess := instance(4, scores)
	sess.Ask([]record.Pair{record.MakePair(0, 3), record.MakePair(1, 3), record.MakePair(2, 3)})
	c := cluster.MustFromSets(4, [][]record.ID{{0, 1, 2, 3}})
	st := newState(c, cands, sess)
	got := st.scoreSplit(3, c.Assignment(3))
	want := (1 - 2*0.4) + (1 - 2*0.3) + (1 - 2*0.5)
	if math.Abs(got.bStar-want) > 1e-9 || got.cost != 0 {
		t.Errorf("split benefit = %v (cost %d), want %v (cost 0)", got.bStar, got.cost, want)
	}

	// Figure 4: merge {a,b} and {c,d} with all four cross scores known.
	scores = map[record.Pair]float64{
		record.MakePair(0, 2): 0.9,
		record.MakePair(0, 3): 0.6,
		record.MakePair(1, 2): 0.7,
		record.MakePair(1, 3): 0.5,
	}
	cands, sess = instance(4, scores)
	sess.Ask([]record.Pair{
		record.MakePair(0, 2), record.MakePair(0, 3),
		record.MakePair(1, 2), record.MakePair(1, 3),
	})
	c = cluster.MustFromSets(4, [][]record.ID{{0, 1}, {2, 3}})
	st = newState(c, cands, sess)
	got = st.scoreMerge(0, 1)
	want = (2*0.9 - 1) + (2*0.6 - 1) + (2*0.7 - 1) + (2*0.5 - 1)
	if math.Abs(got.bStar-want) > 1e-9 || got.cost != 0 {
		t.Errorf("merge benefit = %v (cost %d), want %v", got.bStar, got.cost, want)
	}
}

// TestCostEquations: c(o) counts exactly the candidate pairs outside A;
// pruned pairs cost nothing (their f_c is fixed at 0).
func TestCostEquations(t *testing.T) {
	scores := map[record.Pair]float64{
		record.MakePair(0, 1): 0.8, // known below
		record.MakePair(0, 2): 0.6, // candidate, unknown
		// (1,2) pruned: not a candidate.
	}
	cands, sess := instance(3, scores)
	sess.Ask([]record.Pair{record.MakePair(0, 1)})
	c := cluster.MustFromSets(3, [][]record.ID{{0, 1, 2}})
	st := newState(c, cands, sess)
	s := st.scoreSplit(0, 0)
	unknown := st.unknownPairs(s.op)
	if s.cost != 1 || len(unknown) != 1 || unknown[0] != record.MakePair(0, 2) {
		t.Errorf("split cost = %d unknown=%v, want 1 [(0,2)]", s.cost, unknown)
	}
	// Split of 2: pairs (0,2) unknown candidate, (1,2) pruned → cost 1,
	// and the pruned pair contributes 1−2·0 = 1 to the estimate.
	s = st.scoreSplit(2, 0)
	if s.cost != 1 {
		t.Errorf("split(2) cost = %d, want 1", s.cost)
	}
}

// TestExample3 replays the paper's Appendix B walk-through end to end:
// the candidate graph of Figure 9a, permutation (c,e,b,d,a,f), ε = 0.4.
// Cluster generation must finish in one batch with clusters {a,b,c,d},
// {e,f}; Crowd-Refine must then split d (crowdsourcing only (a,d), exact
// benefit 1), merge {d} with {e,f} (crowdsourcing only (d,f), exact
// benefit 1.2), and stop at {a,b,c}, {d,e,f}.
func TestExample3(t *testing.T) {
	// a..f = 0..5.
	scores := map[record.Pair]float64{
		record.MakePair(0, 1): 0.8, // (a,b) never crowdsourced
		record.MakePair(0, 2): 0.7, // (a,c)
		record.MakePair(1, 2): 0.9, // (b,c)
		record.MakePair(2, 3): 0.6, // (c,d)
		record.MakePair(0, 3): 0.4, // (a,d)
		record.MakePair(0, 4): 0.3, // (a,e)
		record.MakePair(3, 4): 0.8, // (d,e)
		record.MakePair(3, 5): 0.8, // (d,f)
		record.MakePair(4, 5): 0.8, // (e,f)
	}
	cands, sess := instance(6, scores)

	// Generation phase surrogate: the batch issues exactly the edges
	// incident to pivots c and e.
	genPairs := []record.Pair{
		record.MakePair(0, 2), record.MakePair(1, 2), record.MakePair(2, 3),
		record.MakePair(0, 4), record.MakePair(3, 4), record.MakePair(4, 5),
	}
	sess.Ask(genPairs)
	c := cluster.MustFromSets(6, [][]record.ID{{0, 1, 2, 3}, {4, 5}}) // Figure 9b

	got := CrowdRefine(c, cands, sess)
	want := cluster.MustFromSets(6, [][]record.ID{{0, 1, 2}, {3, 4, 5}}) // Figure 9d
	if !cluster.Equal(got, want) {
		t.Errorf("refined clusters = %v, want {a,b,c},{d,e,f}", got.Sets())
	}
	st := sess.Stats()
	// 6 generation pairs + exactly (a,d) and (d,f) during refinement.
	if st.Pairs != 8 {
		t.Errorf("pairs crowdsourced = %d, want 8", st.Pairs)
	}
	if _, known := sess.Known(record.MakePair(0, 3)); !known {
		t.Errorf("(a,d) was not crowdsourced")
	}
	if _, known := sess.Known(record.MakePair(3, 5)); !known {
		t.Errorf("(d,f) was not crowdsourced")
	}
	if _, known := sess.Known(record.MakePair(0, 1)); known {
		t.Errorf("(a,b) should never be crowdsourced")
	}
	// Refinement asked one pair at a time: 2 extra iterations.
	if st.Iterations != 3 {
		t.Errorf("iterations = %d, want 3 (1 generation + 2 refinement)", st.Iterations)
	}
}

// TestExample3PCRefine runs the same instance through PC-Refine; the
// result must be identical (the two refinement ops are independent only
// across iterations here, so batching still ends at Figure 9d).
func TestExample3PCRefine(t *testing.T) {
	scores := map[record.Pair]float64{
		record.MakePair(0, 1): 0.8,
		record.MakePair(0, 2): 0.7,
		record.MakePair(1, 2): 0.9,
		record.MakePair(2, 3): 0.6,
		record.MakePair(0, 3): 0.4,
		record.MakePair(0, 4): 0.3,
		record.MakePair(3, 4): 0.8,
		record.MakePair(3, 5): 0.8,
		record.MakePair(4, 5): 0.8,
	}
	cands, sess := instance(6, scores)
	sess.Ask([]record.Pair{
		record.MakePair(0, 2), record.MakePair(1, 2), record.MakePair(2, 3),
		record.MakePair(0, 4), record.MakePair(3, 4), record.MakePair(4, 5),
	})
	c := cluster.MustFromSets(6, [][]record.ID{{0, 1, 2, 3}, {4, 5}})
	got := PCRefine(c, cands, sess, DefaultX)
	want := cluster.MustFromSets(6, [][]record.ID{{0, 1, 2}, {3, 4, 5}})
	if !cluster.Equal(got, want) {
		t.Errorf("PC-Refine clusters = %v, want {a,b,c},{d,e,f}", got.Sets())
	}
}

// lambdaTrue computes Λ′(R) against the full fixed answer set (every
// candidate pair at its true crowd score).
func lambdaTrue(c *cluster.Clustering, scores map[record.Pair]float64) float64 {
	s := cluster.Scores{}
	for p, fc := range scores {
		s[p] = fc
	}
	return cluster.Lambda(c, s)
}

func randomRefineInstance(rng *rand.Rand) (int, map[record.Pair]float64, *cluster.Clustering) {
	n := 3 + rng.Intn(15)
	scores := map[record.Pair]float64{}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.4 {
				scores[record.MakePair(record.ID(i), record.ID(j))] = float64(rng.Intn(4)) / 3
			}
		}
	}
	k := 1 + rng.Intn(n)
	sets := make([][]record.ID, k)
	for i := 0; i < n; i++ {
		x := rng.Intn(k)
		sets[x] = append(sets[x], record.ID(i))
	}
	var nonEmpty [][]record.ID
	for _, s := range sets {
		if len(s) > 0 {
			nonEmpty = append(nonEmpty, s)
		}
	}
	return n, scores, cluster.MustFromSets(n, nonEmpty)
}

// TestAppliedOpReducesLambda: every operation with exactly-known benefit
// changes Λ′(R) by exactly −b(o) when applied (the defining property of
// Equations 5–6).
func TestAppliedOpReducesLambda(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, scores, c := randomRefineInstance(rng)
		cands, sess := instance(n, scores)
		// Make everything known so all benefits are exact.
		all := make([]record.Pair, 0, len(scores))
		for p := range scores {
			all = append(all, p)
		}
		sess.Ask(all)
		st := newState(c, cands, sess)
		for _, s := range st.enumerate() {
			if s.cost != 0 {
				return false // everything is known; cost must be 0
			}
			before := lambdaTrue(st.c, scores)
			cp := st.c.Clone()
			stCopy := newState(cp, cands, sess)
			stCopy.apply(s.op)
			after := lambdaTrue(cp, scores)
			if math.Abs((before-after)-s.bStar) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestRefineNeverWorsensLambda: both refiners only ever apply operations
// with exact positive benefit, so the true Λ′(R) is non-increasing.
func TestRefineNeverWorsensLambda(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, scores, c := randomRefineInstance(rng)

		for _, usePC := range []bool{false, true} {
			cands, sess := instance(n, scores)
			work := c.Clone()
			before := lambdaTrue(work, scores)
			var got *cluster.Clustering
			if usePC {
				got = PCRefine(work, cands, sess, DefaultX)
			} else {
				got = CrowdRefine(work, cands, sess)
			}
			if lambdaTrue(got, scores) > before+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestRefineOutputIsPartition: refinement always returns a disjoint cover.
func TestRefineOutputIsPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, scores, c := randomRefineInstance(rng)
		cands, sess := instance(n, scores)
		got := PCRefine(c, cands, sess, DefaultX)
		seen := map[record.ID]bool{}
		total := 0
		for _, set := range got.Sets() {
			for _, r := range set {
				if seen[r] {
					return false
				}
				seen[r] = true
				total++
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPCRefineFewerIterations: on an instance with several independent
// fixable defects, PC-Refine needs no more crowd iterations than
// Crowd-Refine and reaches the same (or better) Λ′.
func TestPCRefineFewerIterations(t *testing.T) {
	// Three separate components, each a pair that belongs together but
	// starts split, plus one bad merge to undo. All crowd scores decisive.
	scores := map[record.Pair]float64{
		record.MakePair(0, 1): 1.0,
		record.MakePair(2, 3): 1.0,
		record.MakePair(4, 5): 1.0,
		record.MakePair(6, 7): 0.0,
	}
	start := cluster.MustFromSets(8, [][]record.ID{{0}, {1}, {2}, {3}, {4}, {5}, {6, 7}})

	candsA, sessA := instance(8, scores)
	CrowdRefine(start.Clone(), candsA, sessA)
	seq := sessA.Stats()

	candsB, sessB := instance(8, scores)
	got := PCRefine(start.Clone(), candsB, sessB, 1) // large budget: T = N_m/1
	par := sessB.Stats()

	if par.Iterations > seq.Iterations {
		t.Errorf("PC-Refine iterations %d > Crowd-Refine %d", par.Iterations, seq.Iterations)
	}
	want := cluster.MustFromSets(8, [][]record.ID{{0, 1}, {2, 3}, {4, 5}, {6}, {7}})
	if !cluster.Equal(got, want) {
		t.Errorf("PC-Refine result %v", got.Sets())
	}
}

// TestRefineIdempotent: refining an already-optimal clustering changes
// nothing and asks nothing new once all pairs are known.
func TestRefineIdempotent(t *testing.T) {
	scores := map[record.Pair]float64{
		record.MakePair(0, 1): 1.0,
		record.MakePair(2, 3): 0.0,
	}
	cands, sess := instance(4, scores)
	sess.Ask([]record.Pair{record.MakePair(0, 1), record.MakePair(2, 3)})
	c := cluster.MustFromSets(4, [][]record.ID{{0, 1}, {2}, {3}})
	before := sess.Stats()
	got := CrowdRefine(c.Clone(), cands, sess)
	if !cluster.Equal(got, c) {
		t.Errorf("optimal clustering changed: %v", got.Sets())
	}
	if sess.Stats() != before {
		t.Errorf("idempotent refinement crowdsourced pairs: %+v", sess.Stats())
	}
}

// TestThresholdClamp: the budget never drops below 1 and respects N_u.
func TestThresholdClamp(t *testing.T) {
	scores := map[record.Pair]float64{record.MakePair(0, 1): 0.9}
	cands, sess := instance(2, scores)
	c := cluster.MustFromSets(2, [][]record.ID{{0}, {1}})
	st := newState(c, cands, sess)
	if got := threshold(st, 1000); got != 1 {
		t.Errorf("threshold = %d, want clamp to 1", got)
	}
}
