package refine

import (
	"acd/internal/cluster"
	"acd/internal/crowd"
	"acd/internal/pruning"
	"acd/internal/record"
)

// CrowdBOEM adapts the BOEM postprocessor [22] to the crowd setting in
// the direct way Section 5.1 argues against: each best-one-element-move
// iteration must know the crowd score of every candidate pair between a
// movable record and the clusters it could move to, so all of those
// still-unknown pairs are crowdsourced up front, one batch per
// iteration. The algorithm then applies the move with the largest exact
// Λ′ reduction, stopping at a local optimum.
//
// It exists as the cost baseline for the refinement ablation: it reaches
// quality comparable to PC-Refine but crowdsources a large fraction of
// the candidate set, demonstrating why the paper replaces it with the
// benefit-cost-driven operations of Section 5.
func CrowdBOEM(c *cluster.Clustering, cands *pruning.Candidates, sess *crowd.Session) *cluster.Clustering {
	// Candidate adjacency: only records connected by a candidate pair
	// can profitably share a cluster.
	adj := make(map[record.ID][]record.ID)
	for _, sp := range cands.Pairs {
		adj[sp.Pair.Lo] = append(adj[sp.Pair.Lo], sp.Pair.Hi)
		adj[sp.Pair.Hi] = append(adj[sp.Pair.Hi], sp.Pair.Lo)
	}

	fc := func(a, b record.ID) float64 {
		p := record.MakePair(a, b)
		if v, ok := sess.Known(p); ok {
			return v
		}
		return 0 // pruned pairs have f_c = 0; unknown candidates are resolved below
	}

	for {
		// Resolve every pair a move-gain computation could touch: for
		// each record, its candidate pairs into its own cluster and into
		// adjacent clusters.
		var unknown []record.Pair
		seen := make(map[record.Pair]struct{})
		for r := record.ID(0); int(r) < c.Len(); r++ {
			for _, nb := range adj[r] {
				p := record.MakePair(r, nb)
				if _, ok := sess.Known(p); ok {
					continue
				}
				if _, dup := seen[p]; dup {
					continue
				}
				seen[p] = struct{}{}
				unknown = append(unknown, p)
			}
		}
		sess.Ask(unknown)
		if sess.Err() != nil {
			break // cancelled campaign: stop at the current clustering
		}

		// Best single-record move, gains computed over exact scores.
		moveGain := func(r record.ID, target int) float64 {
			gain := 0.0
			for _, m := range c.Members(c.Assignment(r)) {
				if m != r {
					gain += 1 - 2*fc(r, m)
				}
			}
			if target >= 0 {
				for _, m := range c.Members(target) {
					gain -= 1 - 2*fc(r, m)
				}
			}
			return gain
		}
		bestGain := 1e-12
		var bestR record.ID
		bestTarget := -2
		for r := record.ID(0); int(r) < c.Len(); r++ {
			targets := map[int]struct{}{}
			for _, nb := range adj[r] {
				if t := c.Assignment(nb); t != c.Assignment(r) {
					targets[t] = struct{}{}
				}
			}
			if c.Size(c.Assignment(r)) > 1 {
				targets[-1] = struct{}{}
			}
			for t := range targets {
				if g := moveGain(r, t); g > bestGain {
					bestGain, bestR, bestTarget = g, r, t
				}
			}
		}
		if bestTarget == -2 {
			break
		}
		newIdx := c.Split(bestR)
		if bestTarget >= 0 {
			c.Merge(bestTarget, newIdx)
		}
	}
	c.Compact()
	return c
}
