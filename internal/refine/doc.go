// Package refine implements the cluster refinement phase of ACD
// (Section 5).
//
// Paper artifacts:
//
//   - Op — the split/merge operations of Section 5.1, with exact
//     benefits (Equations 5–6, the Λ decrease) and crowdsourcing costs
//     (Equations 7–8, the unknown pairs outside the session's set A).
//   - CrowdRefine — Algorithm 4, the sequential refinement: apply free
//     known-positive operations, else crowdsource the best estimated
//     benefit-cost ratio b*(o)/c(o) and apply it if its exact benefit
//     is positive.
//   - PCRefine / PCRefineMode — Algorithm 5, the batched refinement:
//     greedily pack independent operations by descending ratio
//     (Equation 9, Lemma 5: batching loses nothing because independent
//     operations' benefits are additive) under the per-batch cost
//     budget T = N_m/x (Section 5.4); DefaultX is the paper's x = 8.
//
// Benefit estimation for unknown pairs goes through the equi-depth
// estimator of internal/histogram (Section 5.2). Instrumented runs
// publish the refine/* metrics of metrics.go: operations enumerated,
// packed and applied per batch, the ratio distribution, and histogram
// rebuild churn.
package refine
