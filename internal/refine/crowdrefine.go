package refine

import (
	"acd/internal/cluster"
	"acd/internal/crowd"
	"acd/internal/pruning"
	"acd/internal/record"
)

// CrowdRefine runs Algorithm 4, the sequential cluster refinement: it
// repeatedly applies the best known-positive operation for free, and when
// none exists it picks the operation with the best estimated benefit-cost
// ratio, crowdsources that operation's unknown pairs, and applies the
// operation if its exact benefit is positive. It terminates when the best
// ratio is non-positive.
//
// The clustering c is refined in place and returned (compacted). The
// session must be the one used during cluster generation: its known-pair
// set is the paper's A, and every new question is charged to it.
func CrowdRefine(c *cluster.Clustering, cands *pruning.Candidates, sess *crowd.Session) *cluster.Clustering {
	st := newState(c, cands, sess)
	rec := sess.Recorder()
	for {
		st.applyKnownPositive()

		ranked := sortByRatio(st.enumerate())
		if len(ranked) == 0 {
			break // best ratio ≤ 0 (Lines 10-11)
		}
		chosen := ranked[0]
		rec.Count(MetricOpsEnumerated, int64(len(ranked)))
		rec.Count(MetricBatches, 1)
		rec.Count(MetricOpsPacked, 1)
		rec.Observe(MetricRatio, chosen.ratio())
		// Crowdsource the unknown pairs of the chosen operation
		// (Line 12) and recompute its benefit exactly. A failed batch
		// (cancelled campaign) stops the refinement cleanly.
		sess.Ask(st.unknownPairs(chosen.op))
		if sess.Err() != nil {
			break
		}
		st.rebuildHistogram()
		if b := st.exactBenefit(chosen.op); b > 0 {
			st.apply(chosen.op) // Lines 13-14
			rec.Count(MetricOpsApplied, 1)
		}
	}
	c.Compact()
	return c
}

// collectUnknown gathers the distinct unknown pairs across a set of
// operations, preserving first-seen order.
func collectUnknown(st *state, ops []scoredOp) []record.Pair {
	seen := make(map[record.Pair]struct{})
	var out []record.Pair
	for _, s := range ops {
		for _, p := range st.unknownPairs(s.op) {
			if _, dup := seen[p]; !dup {
				seen[p] = struct{}{}
				out = append(out, p)
			}
		}
	}
	return out
}
