package refine

import (
	"container/heap"
	"sort"
)

// The known-positive drain loop (Lines 4-7 of Algorithms 4 and 5)
// repeatedly applies the zero-cost operation with the highest exact
// benefit. Re-enumerating and re-scoring every operation after every
// apply — what the reference formulation does — is quadratic in the op
// count. The drain heap replaces it with a lazy max-heap:
//
//   - every zero-cost positive-benefit op enters the heap once, stamped
//     with the version counters of the clusters it touches;
//   - popping an entry whose stamps no longer match the live versions
//     discards it — the op was re-scored (or ceased to exist) when its
//     cluster mutated, and the fresh entry, if any, is already in the
//     heap;
//   - after each apply, only the ops touching the two mutated clusters
//     are re-discovered and re-scored (via the static record -> incident
//     candidate-pair index), not the whole op space.
//
// Equivalence with the reference selection rests on two invariants. An
// op's score can only change when a cluster it touches mutates (benefit
// reads only the members of its clusters; answers and the histogram are
// fixed during a drain), so version stamps detect exactly the stale
// entries. And an untouched op's enumeration key is stable across
// applies: a split keys on its cluster index and member position, which
// only mutations of that cluster change; a merge keys on the index of
// the first candidate pair connecting its two clusters, which can only
// change when a record enters or leaves one of them. Ties in benefit
// therefore break toward the earliest op in enumeration order — the
// same op the reference loop's first-strictly-greater scan picks.

// enumKey orders operations exactly as collectOps enumerates them:
// splits (kind 0) before merges (kind 1); splits by (cluster index,
// member position); merges by first connecting candidate-pair index.
type enumKey struct {
	kind int32
	k1   int32 // split: cluster index; merge: first connecting pair index
	k2   int32 // split: member position within the cluster
}

func splitKey(idx, pos int) enumKey { return enumKey{kind: 0, k1: int32(idx), k2: int32(pos)} }
func mergeKey(pairIdx int) enumKey  { return enumKey{kind: 1, k1: int32(pairIdx)} }

func keyLess(a, b enumKey) bool {
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	if a.k1 != b.k1 {
		return a.k1 < b.k1
	}
	return a.k2 < b.k2
}

// heapEntry is one scored op in the drain heap with the version stamps
// that validate it.
type heapEntry struct {
	s          scoredOp
	key        enumKey
	verA, verB int
}

// drainHeap is a max-heap over (bStar desc, enumeration key asc).
type drainHeap []heapEntry

func (h drainHeap) Len() int { return len(h) }
func (h drainHeap) Less(i, j int) bool {
	if h[i].s.bStar != h[j].s.bStar {
		return h[i].s.bStar > h[j].s.bStar
	}
	return keyLess(h[i].key, h[j].key)
}
func (h drainHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *drainHeap) Push(x any)   { *h = append(*h, x.(heapEntry)) }
func (h *drainHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// entry stamps a scored op with the current versions of its clusters.
func (st *state) entry(s scoredOp, k enumKey) heapEntry {
	e := heapEntry{s: s, key: k, verA: st.ver(s.op.A)}
	if s.op.Kind == MergeOp {
		e.verB = st.ver(s.op.B)
	}
	return e
}

// entryValid reports whether a popped entry still describes a live op:
// every cluster it touches is at the version it was scored against.
func (st *state) entryValid(e heapEntry) bool {
	if e.verA != st.ver(e.s.op.A) {
		return false
	}
	if e.s.op.Kind == MergeOp && e.verB != st.ver(e.s.op.B) {
		return false
	}
	return true
}

// buildDrainHeap scores the full op space (cache-assisted, parallel) and
// heapifies the zero-cost positive-benefit subset — the O⁺ the drain
// loop starts from.
func (st *state) buildDrainHeap() *drainHeap {
	ops, keys := st.collectOps()
	scored := st.scoreAll(ops)
	h := make(drainHeap, 0, 16)
	for i, s := range scored {
		if s.cost == 0 && s.bStar > 0 {
			h = append(h, st.entry(s, keys[i]))
		}
	}
	heap.Init(&h)
	return &h
}

// pushDirty re-discovers, re-scores and pushes every op touching the
// just-mutated clusters: all splits within them, and every merge with at
// least one endpoint among them (found through the incident-pair index,
// which also yields each merge's first-connecting-pair enumeration
// rank). Entries for the ops' previous versions remain in the heap and
// are discarded by the stamp check when popped.
func (st *state) pushDirty(h *drainHeap, touched [2]int) {
	var ops []Op
	var keys []enumKey
	for _, d := range touched {
		if d < 0 || st.c.Size(d) < 2 {
			continue
		}
		for pos, r := range st.c.Members(d) {
			ops = append(ops, Op{Kind: SplitOp, Record: r, A: d})
			keys = append(keys, splitKey(d, pos))
		}
	}
	// A merge's connecting pairs all have an endpoint inside the touched
	// cluster, so walking the touched members' incident pairs sees every
	// such merge and the minimum over the walked pair indices is the true
	// first-connecting index. Merges between the two touched clusters
	// are deduplicated by the min-index map.
	first := make(map[uint64]int32)
	for _, d := range touched {
		if d < 0 || st.c.Size(d) == 0 {
			continue
		}
		for _, r := range st.c.Members(d) {
			for k := st.nbrOff[r]; k < st.nbrOff[r+1]; k++ {
				pi := st.nbrPair[k]
				a, b := d, st.c.Assignment(st.nbrOther[k])
				if a == b {
					continue
				}
				if a > b {
					a, b = b, a
				}
				key := clusterPairKey(a, b)
				if old, ok := first[key]; !ok || pi < old {
					first[key] = pi
				}
			}
		}
	}
	merges := make([]mergeRef, 0, len(first))
	for k, fi := range first {
		merges = append(merges, mergeRef{a: int(k >> 32), b: int(uint32(k)), firstIdx: fi})
	}
	sort.Slice(merges, func(i, j int) bool { return merges[i].firstIdx < merges[j].firstIdx })
	for _, m := range merges {
		ops = append(ops, Op{Kind: MergeOp, A: m.a, B: m.b})
		keys = append(keys, mergeKey(int(m.firstIdx)))
	}

	for i, s := range st.scoreAll(ops) {
		if s.cost == 0 && s.bStar > 0 {
			heap.Push(h, st.entry(s, keys[i]))
		}
	}
}

// mergeRef is a merge op with its enumeration rank, for pushDirty's
// deterministic ordering.
type mergeRef struct {
	a, b     int
	firstIdx int32
}
