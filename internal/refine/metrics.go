package refine

// Metric names emitted by the cluster refinement phase. They expose how
// the phase spends its budget: operations are enumerated (every split
// and connected merge on the current clustering), the positive-ratio
// ones are ranked by benefit-cost ratio b*(o)/c(o), packed greedily into
// an independent set up to the budget T = N_m/x (Section 5.4), resolved
// in one crowd iteration, and applied only when the exact benefit stays
// positive.
const (
	// MetricBatches counts PC-Refine rounds (one crowd iteration each).
	MetricBatches = "refine/batches"
	// MetricOpsEnumerated counts candidate operations scored across all
	// rounds (after ranking; zero-cost known-positive ops drain earlier
	// and are counted by MetricFreeApplies).
	MetricOpsEnumerated = "refine/ops_enumerated"
	// MetricOpsPacked counts operations admitted into a batch by the
	// greedy independent packing.
	MetricOpsPacked = "refine/ops_packed"
	// MetricOpsApplied counts packed operations whose exact benefit was
	// positive after crowdsourcing and that were therefore applied.
	MetricOpsApplied = "refine/ops_applied"
	// MetricFreeApplies counts known-positive operations applied without
	// any crowd cost (the O⁺ drain of Algorithms 4–5, lines 4–7).
	MetricFreeApplies = "refine/free_applies"
	// MetricRatio is the distribution of benefit-cost ratios of packed
	// operations (the paper's selection criterion, Equation 9).
	MetricRatio = "refine/ratio"
	// MetricBudget is the distribution of per-round budgets T = N_m/x.
	MetricBudget = "refine/budget"
	// MetricHistRebuilds counts rebuilds of the machine→crowd score
	// estimator, and MetricHistSamples gauges the sample count of the
	// latest fit — the "probability fit" the machine side contributes to
	// the refinement phase (Section 5.2).
	MetricHistRebuilds = "refine/histogram_rebuilds"
	MetricHistSamples  = "refine/histogram_samples"
)
