package refine

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// scoreAll fans the re-scoring of a dirty op list over a worker pool.
// Scoring an op is a pure read of the clustering, the candidate set, the
// session's answer map and the histogram, so ops score independently;
// results land in an index-addressed slice and the score cache is
// updated serially in input order afterwards, so the outcome is
// byte-identical to the sequential loop (the same pattern as the
// sharded similarity join in internal/blocking).
const (
	// parallelScoreMin is the uncached-op count below which scoreAll
	// stays sequential: the drain loop's per-apply dirty sets are tiny
	// and goroutine fan-out would cost more than it saves. Full
	// re-enumerations after a crowd batch (every op dirty) clear it.
	parallelScoreMin = 256
	// scoreChunk is the work-queue chunk size; small enough to rebalance
	// around expensive merge scores of large clusters.
	scoreChunk = 16
)

// scoreOne computes an op's score from scratch against the given
// estimate scratch buffer; the caller must have run ensureEstimates.
func (st *state) scoreOne(o Op, sc *estScratch) scoredOp {
	if o.Kind == SplitOp {
		return st.scoreSplitWith(sc, o.Record, o.A)
	}
	return st.scoreMergeWith(sc, o.A, o.B)
}

// scoreAll returns the scores of ops in order, reusing still-valid
// cached scores and recomputing the rest — in parallel when the uncached
// tail is large enough to pay for the pool.
func (st *state) scoreAll(ops []Op) []scoredOp {
	st.ensureEstimates() // serially, before the pool reads the cache
	out := make([]scoredOp, len(ops))
	todo := make([]int, 0, len(ops))
	for i, o := range ops {
		if s, ok := st.cachedScore(o); ok {
			out[i] = s
		} else {
			todo = append(todo, i)
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if len(todo) >= parallelScoreMin && workers > 1 {
		if max := (len(todo) + scoreChunk - 1) / scoreChunk; workers > max {
			workers = max
		}
		// Pre-grow the per-worker scratches serially; each goroutine then
		// owns st.scratches[w] exclusively.
		for w := 0; w < workers; w++ {
			st.scratchFor(w)
		}
		var cursor atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(sc *estScratch) {
				defer wg.Done()
				for {
					hi := int(cursor.Add(scoreChunk))
					lo := hi - scoreChunk
					if lo >= len(todo) {
						return
					}
					if hi > len(todo) {
						hi = len(todo)
					}
					for _, i := range todo[lo:hi] {
						out[i] = st.scoreOne(ops[i], sc)
					}
				}
			}(st.scratches[w])
		}
		wg.Wait()
	} else {
		sc := st.scratchFor(0)
		for _, i := range todo {
			out[i] = st.scoreOne(ops[i], sc)
		}
	}
	// Serial cache update in input order keeps the memo deterministic.
	for _, i := range todo {
		st.storeScore(out[i])
	}
	return out
}
