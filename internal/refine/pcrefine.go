package refine

import (
	"acd/internal/cluster"
	"acd/internal/crowd"
	"acd/internal/pruning"
)

// DefaultX is the paper's choice for the refinement budget divisor
// (Appendix C): T = N_m/8 "provides good clustering accuracy while using
// only a small number of crowdsourced pairs and crowd iterations".
const DefaultX = 8

// PCRefine runs Algorithm 5, the batched cluster refinement. Like
// CrowdRefine it drains known-positive operations for free; but instead
// of crowdsourcing one operation at a time it packs a set O^i of mutually
// independent operations — greedily by descending benefit-cost ratio,
// stopping once the packed crowdsourcing cost reaches T — and resolves
// all of their unknown pairs in a single crowd iteration. T is
// recomputed before each batch as N_m/x with N_m = min(|R|²/(2|C|), N_u)
// (Section 5.4), clamped below at 1 so a positive-ratio operation can
// always make progress.
//
// The clustering c is refined in place and returned (compacted).
func PCRefine(c *cluster.Clustering, cands *pruning.Candidates, sess *crowd.Session, x int) *cluster.Clustering {
	return PCRefineMode(c, cands, sess, x, HistogramEstimator)
}

// PCRefineMode is PCRefine with an explicit estimator mode, used by the
// histogram-vs-identity ablation.
func PCRefineMode(c *cluster.Clustering, cands *pruning.Candidates, sess *crowd.Session, x int, mode EstimatorMode) *cluster.Clustering {
	if x <= 0 {
		x = DefaultX
	}
	st := newState(c, cands, sess)
	st.mode = mode
	rec := sess.Recorder()
	for {
		st.applyKnownPositive()

		ranked := sortByRatio(st.enumerate())
		if len(ranked) == 0 {
			break
		}
		budget := threshold(st, x)
		rec.Count(MetricOpsEnumerated, int64(len(ranked)))
		rec.Observe(MetricBudget, float64(budget))

		// Greedy independent packing (Lines 9-14).
		var packed []scoredOp
		totalCost := 0
		for _, s := range ranked {
			if totalCost >= budget {
				break
			}
			indep := true
			for _, q := range packed {
				if !Independent(s.op, q.op) {
					indep = false
					break
				}
			}
			if indep {
				packed = append(packed, s)
				totalCost += s.cost
				rec.Observe(MetricRatio, s.ratio())
			}
		}
		if len(packed) == 0 {
			break
		}

		// One batch resolves every packed operation's unknown pairs
		// (Line 15). A failed batch (cancelled campaign) applies
		// nothing: the zero scores are not answers.
		sess.Ask(collectUnknown(st, packed))
		if sess.Err() != nil {
			break
		}
		st.rebuildHistogram()

		applied := 0
		for _, s := range packed {
			if b := st.exactBenefit(s.op); b > 0 {
				st.apply(s.op) // Lines 16-18
				applied++
			}
		}
		rec.Count(MetricBatches, 1)
		rec.Count(MetricOpsPacked, int64(len(packed)))
		rec.Count(MetricOpsApplied, int64(applied))
		if rec.Tracing() {
			rec.Trace("refine.batch", map[string]any{
				"ranked": len(ranked), "packed": len(packed), "applied": applied,
				"budget": budget, "cost": totalCost,
			})
		}
		if applied == 0 {
			break // Lines 19-20
		}
	}
	c.Compact()
	return c
}

// threshold computes T = N_m/x for the current state: N_m is the smaller
// of |R|²/(2|C|) — the maximum pairs a full batch of merges could need —
// and N_u, the candidate pairs not yet crowdsourced.
func threshold(st *state, x int) int {
	numClusters := st.c.NumClusters()
	if numClusters == 0 {
		return 1
	}
	n := st.c.Len()
	maxPairs := n * n / (2 * numClusters)
	nu := len(st.cands.Pairs) - knownCandidates(st)
	nm := maxPairs
	if nu < nm {
		nm = nu
	}
	t := nm / x
	if t < 1 {
		t = 1
	}
	return t
}

// knownCandidates counts candidate pairs already crowdsourced (|A|; every
// session-known pair is a candidate because only candidates are ever
// issued).
func knownCandidates(st *state) int { return st.sess.KnownCount() }
