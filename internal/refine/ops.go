package refine

import (
	"fmt"
	"sort"

	"acd/internal/cluster"
	"acd/internal/crowd"
	"acd/internal/histogram"
	"acd/internal/pruning"
	"acd/internal/record"
)

// OpKind distinguishes the two basic operations of Section 5.1.
type OpKind int

const (
	// SplitOp removes one record from its cluster into a fresh singleton.
	SplitOp OpKind = iota
	// MergeOp combines two clusters.
	MergeOp
)

// Op is a candidate refinement operation over specific cluster indices of
// the working clustering. Ops are only meaningful against the clustering
// state they were enumerated from.
type Op struct {
	Kind   OpKind
	Record record.ID // split only: the record to split out
	A, B   int       // A: source/first cluster; B: merge partner
}

// String renders the op for logs and error messages.
func (o Op) String() string {
	if o.Kind == SplitOp {
		return fmt.Sprintf("split(%d from C%d)", o.Record, o.A)
	}
	return fmt.Sprintf("merge(C%d, C%d)", o.A, o.B)
}

// clusters returns the cluster indices o touches, for the independence
// test of Section 5.4.
func (o Op) clusters() [2]int {
	if o.Kind == SplitOp {
		return [2]int{o.A, -1}
	}
	return [2]int{o.A, o.B}
}

// Independent reports whether two operations adjust completely different
// clusters and can therefore be applied simultaneously without side
// effects (Section 5.4).
func Independent(a, b Op) bool {
	ca, cb := a.clusters(), b.clusters()
	for _, x := range ca {
		if x == -1 {
			continue
		}
		for _, y := range cb {
			if y != -1 && x == y {
				return false
			}
		}
	}
	return true
}

// scoredOp is an enumerated operation with its estimated benefit b*(o),
// crowdsourcing cost c(o), and the candidate pairs that would need to be
// crowdsourced to compute the exact benefit.
type scoredOp struct {
	op      Op
	bStar   float64       // estimated benefit (exact when cost == 0)
	cost    int           // c(o) of Equations 7–8
	unknown []record.Pair // the cost pairs themselves
}

// ratio returns the benefit-cost ratio b*(o)/c(o); only meaningful for
// cost > 0 (zero-cost ops are handled through the known-benefit set O⁺).
func (s scoredOp) ratio() float64 { return s.bStar / float64(s.cost) }

// EstimatorMode selects how the refinement phase estimates the crowd
// score of a candidate pair that has not been crowdsourced yet.
type EstimatorMode int

const (
	// HistogramEstimator is the paper's method (Section 5.2): an
	// equi-depth histogram maps machine scores to the average crowd
	// score observed in the same bucket.
	HistogramEstimator EstimatorMode = iota
	// IdentityEstimator uses the machine score directly as the crowd
	// score estimate — the "straightforward solution" of [46, 47] that
	// Section 5.2 improves upon. Available for ablations.
	IdentityEstimator
)

// state carries the refinement phase's working data: the clustering under
// adjustment, the candidate set with machine scores, the crowd session
// (whose known-pair set is the paper's A), and the histogram estimator.
//
// Operation scores are cached and invalidated incrementally: a cached
// score stays valid while (a) every cluster the operation touches is
// unchanged (per-cluster version counters bumped by apply) and (b) no
// new crowd answers have arrived (answers change both the known set and
// the histogram, shifting every estimate). The cache makes the
// known-positive drain loop — which re-ranks all operations after every
// free apply — nearly linear instead of quadratic in practice.
type state struct {
	c     *cluster.Clustering
	cands *pruning.Candidates
	sess  *crowd.Session
	hist  *histogram.Histogram
	mode  EstimatorMode

	version map[int]int        // cluster index -> mutation counter
	cache   map[opKey]cachedOp // scored-op memo
}

// opKey identifies an operation independent of its score.
type opKey struct {
	kind   OpKind
	record record.ID
	a, b   int
}

type cachedOp struct {
	s         scoredOp
	verA      int
	verB      int
	answersAt int // sess.KnownCount() when scored
}

func keyOf(o Op) opKey {
	return opKey{kind: o.Kind, record: o.Record, a: o.A, b: o.B}
}

func newState(c *cluster.Clustering, cands *pruning.Candidates, sess *crowd.Session) *state {
	st := &state{
		c:       c,
		cands:   cands,
		sess:    sess,
		version: make(map[int]int),
		cache:   make(map[opKey]cachedOp),
	}
	st.rebuildHistogram()
	return st
}

// cachedScore returns a still-valid cached score for an op, if any.
func (st *state) cachedScore(o Op) (scoredOp, bool) {
	e, ok := st.cache[keyOf(o)]
	if !ok || e.answersAt != st.sess.KnownCount() {
		return scoredOp{}, false
	}
	if e.verA != st.version[o.A] {
		return scoredOp{}, false
	}
	if o.Kind == MergeOp && e.verB != st.version[o.B] {
		return scoredOp{}, false
	}
	return e.s, true
}

func (st *state) storeScore(s scoredOp) {
	o := s.op
	e := cachedOp{s: s, verA: st.version[o.A], answersAt: st.sess.KnownCount()}
	if o.Kind == MergeOp {
		e.verB = st.version[o.B]
	}
	st.cache[keyOf(o)] = e
}

// rebuildHistogram reconstructs the equi-depth estimator from every pair
// the session has crowdsourced so far (Section 5.2; also Lines 15-16 of
// Algorithm 4 and 21-22 of Algorithm 5).
func (st *state) rebuildHistogram() {
	known := st.sess.KnownPairs()
	samples := make([]histogram.Sample, 0, len(known))
	for p, fc := range known {
		samples = append(samples, histogram.Sample{Machine: st.cands.Score(p), Crowd: fc})
	}
	st.hist = histogram.Build(samples, histogram.DefaultBuckets)
	rec := st.sess.Recorder()
	rec.Count(MetricHistRebuilds, 1)
	rec.Gauge(MetricHistSamples, float64(len(samples)))
}

// estimate returns the best available f_c estimate for a pair: the exact
// crowd score when the pair is in A, the histogram mapping of its machine
// score when it is an uncrowdsourced candidate, and exactly 0 when the
// pair was eliminated by pruning (Section 3 fixes f_c = 0 for pruned
// pairs; they are never crowdsourced).
func (st *state) estimate(p record.Pair) (fc float64, exact bool) {
	if fc, ok := st.sess.Known(p); ok {
		return fc, true
	}
	if !st.cands.Contains(p) {
		return 0, true
	}
	if st.mode == IdentityEstimator {
		return st.cands.Score(p), false
	}
	return st.hist.Estimate(st.cands.Score(p)), false
}

// scoreSplit evaluates the split of r from cluster a (Equations 5 and 7).
func (st *state) scoreSplit(r record.ID, a int) scoredOp {
	s := scoredOp{op: Op{Kind: SplitOp, Record: r, A: a}}
	for _, other := range st.c.Members(a) {
		if other == r {
			continue
		}
		p := record.MakePair(r, other)
		fc, exact := st.estimate(p)
		s.bStar += 1 - 2*fc
		if !exact {
			s.cost++
			s.unknown = append(s.unknown, p)
		}
	}
	return s
}

// scoreMerge evaluates the merger of clusters a and b (Equations 6 and 8).
func (st *state) scoreMerge(a, b int) scoredOp {
	s := scoredOp{op: Op{Kind: MergeOp, A: a, B: b}}
	for _, r1 := range st.c.Members(a) {
		for _, r2 := range st.c.Members(b) {
			p := record.MakePair(r1, r2)
			fc, exact := st.estimate(p)
			s.bStar += 2*fc - 1
			if !exact {
				s.cost++
				s.unknown = append(s.unknown, p)
			}
		}
	}
	return s
}

// exactBenefit recomputes an operation's benefit assuming all of its
// pairs are now known (called after crowdsourcing the unknown ones).
func (st *state) exactBenefit(o Op) float64 {
	var s scoredOp
	switch o.Kind {
	case SplitOp:
		s = st.scoreSplit(o.Record, o.A)
	case MergeOp:
		s = st.scoreMerge(o.A, o.B)
	}
	if s.cost != 0 {
		panic(fmt.Sprintf("refine: exactBenefit(%v) still has %d unknown pairs", o, s.cost))
	}
	return s.bStar
}

// apply performs the operation on the working clustering and bumps the
// version counters of every touched cluster (including the fresh
// singleton a split creates).
func (st *state) apply(o Op) {
	switch o.Kind {
	case SplitOp:
		idx := st.c.Split(o.Record)
		st.version[o.A]++
		st.version[idx]++
	case MergeOp:
		st.c.Merge(o.A, o.B)
		st.version[o.A]++
		st.version[o.B]++
	}
}

// enumerate returns every operation of interest on the current
// clustering: a split for every record in a non-singleton cluster, and a
// merge for every pair of clusters connected by at least one candidate
// pair. Cluster pairs with no candidate edge are omitted as an exact
// optimization: every one of their cross pairs has f_c = 0 (pruned), so
// their merge benefit is at most -1 per cross pair and can never be
// selected by benefit or ratio.
func (st *state) enumerate() []scoredOp {
	var ops []scoredOp
	score := func(o Op) scoredOp {
		if s, ok := st.cachedScore(o); ok {
			return s
		}
		var s scoredOp
		if o.Kind == SplitOp {
			s = st.scoreSplit(o.Record, o.A)
		} else {
			s = st.scoreMerge(o.A, o.B)
		}
		st.storeScore(s)
		return s
	}
	for _, idx := range st.c.ClusterIndices() {
		if st.c.Size(idx) < 2 {
			continue
		}
		for _, r := range st.c.Members(idx) {
			ops = append(ops, score(Op{Kind: SplitOp, Record: r, A: idx}))
		}
	}
	seen := make(map[[2]int]struct{})
	for _, sp := range st.cands.Pairs {
		a := st.c.Assignment(sp.Pair.Lo)
		b := st.c.Assignment(sp.Pair.Hi)
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		key := [2]int{a, b}
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		ops = append(ops, score(Op{Kind: MergeOp, A: a, B: b}))
	}
	return ops
}

// applyKnownPositive drains the set O⁺: while there is an operation whose
// benefit is exactly known and positive, apply the best one (Lines 4-7 of
// Algorithms 4 and 5). This step needs no crowd at all. Termination is
// guaranteed because each applied operation decreases Λ′(R) by its exact
// benefit, which is a positive multiple of 1/workers.
func (st *state) applyKnownPositive() {
	for {
		best := scoredOp{bStar: 0}
		found := false
		for _, s := range st.enumerate() {
			if s.cost == 0 && s.bStar > 0 && (!found || s.bStar > best.bStar) {
				best = s
				found = true
			}
		}
		if !found {
			return
		}
		st.apply(best.op)
		st.sess.Recorder().Count(MetricFreeApplies, 1)
	}
}

// sortByRatio orders positive-ratio, positive-cost ops by descending
// benefit-cost ratio with deterministic tie-breaking.
func sortByRatio(ops []scoredOp) []scoredOp {
	var out []scoredOp
	for _, s := range ops {
		if s.cost > 0 && s.ratio() > 0 {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ri, rj := out[i].ratio(), out[j].ratio()
		if ri != rj {
			return ri > rj
		}
		oi, oj := out[i].op, out[j].op
		if oi.Kind != oj.Kind {
			return oi.Kind < oj.Kind
		}
		if oi.A != oj.A {
			return oi.A < oj.A
		}
		if oi.B != oj.B {
			return oi.B < oj.B
		}
		return oi.Record < oj.Record
	})
	return out
}
