package refine

import (
	"container/heap"
	"fmt"
	"sort"

	"acd/internal/cluster"
	"acd/internal/crowd"
	"acd/internal/histogram"
	"acd/internal/pruning"
	"acd/internal/record"
)

// OpKind distinguishes the two basic operations of Section 5.1.
type OpKind int

const (
	// SplitOp removes one record from its cluster into a fresh singleton.
	SplitOp OpKind = iota
	// MergeOp combines two clusters.
	MergeOp
)

// Op is a candidate refinement operation over specific cluster indices of
// the working clustering. Ops are only meaningful against the clustering
// state they were enumerated from.
type Op struct {
	Kind   OpKind
	Record record.ID // split only: the record to split out
	A, B   int       // A: source/first cluster; B: merge partner
}

// String renders the op for logs and error messages.
func (o Op) String() string {
	if o.Kind == SplitOp {
		return fmt.Sprintf("split(%d from C%d)", o.Record, o.A)
	}
	return fmt.Sprintf("merge(C%d, C%d)", o.A, o.B)
}

// clusters returns the cluster indices o touches, for the independence
// test of Section 5.4.
func (o Op) clusters() [2]int {
	if o.Kind == SplitOp {
		return [2]int{o.A, -1}
	}
	return [2]int{o.A, o.B}
}

// Independent reports whether two operations adjust completely different
// clusters and can therefore be applied simultaneously without side
// effects (Section 5.4).
func Independent(a, b Op) bool {
	ca, cb := a.clusters(), b.clusters()
	for _, x := range ca {
		if x == -1 {
			continue
		}
		for _, y := range cb {
			if y != -1 && x == y {
				return false
			}
		}
	}
	return true
}

// scoredOp is an enumerated operation with its estimated benefit b*(o)
// and crowdsourcing cost c(o). The cost pairs themselves are not
// materialized during scoring — almost every scored op is never
// selected, so allocating its pair list would dominate the refinement
// phase's allocations; unknownPairs reproduces the list on demand for
// the few ops that actually get packed.
type scoredOp struct {
	op    Op
	bStar float64 // estimated benefit (exact when cost == 0)
	cost  int     // c(o) of Equations 7–8
}

// ratio returns the benefit-cost ratio b*(o)/c(o); only meaningful for
// cost > 0 (zero-cost ops are handled through the known-benefit set O⁺).
func (s scoredOp) ratio() float64 { return s.bStar / float64(s.cost) }

// EstimatorMode selects how the refinement phase estimates the crowd
// score of a candidate pair that has not been crowdsourced yet.
type EstimatorMode int

const (
	// HistogramEstimator is the paper's method (Section 5.2): an
	// equi-depth histogram maps machine scores to the average crowd
	// score observed in the same bucket.
	HistogramEstimator EstimatorMode = iota
	// IdentityEstimator uses the machine score directly as the crowd
	// score estimate — the "straightforward solution" of [46, 47] that
	// Section 5.2 improves upon. Available for ablations.
	IdentityEstimator
)

// state carries the refinement phase's working data: the clustering under
// adjustment, the candidate set with machine scores, the crowd session
// (whose known-pair set is the paper's A), and the histogram estimator.
//
// Operation scores are cached and invalidated incrementally: a cached
// score stays valid while (a) every cluster the operation touches is
// unchanged (per-cluster version counters bumped by apply) and (b) no
// new crowd answers have arrived (answers change both the known set and
// the histogram, shifting every estimate). The cache makes the
// known-positive drain loop — which re-ranks all operations after every
// free apply — nearly linear instead of quadratic in practice.
type state struct {
	c     *cluster.Clustering
	cands *pruning.Candidates
	sess  *crowd.Session
	hist  *histogram.Histogram
	mode  EstimatorMode

	version []int              // cluster index -> mutation counter
	cache   map[opKey]cachedOp // scored-op memo

	// The candidate graph in CSR form: record r's incident candidate
	// pairs occupy nbrPair[nbrOff[r]:nbrOff[r+1]] (indices into
	// cands.Pairs), with nbrOther holding each pair's other endpoint so
	// the hot loops never re-derive it from the pair itself. The
	// candidate set is immutable for the life of the state, so this is
	// built once; it lets the drain loop rediscover the merge ops of a
	// just-mutated cluster (and their first-connecting-pair enumeration
	// ranks) by walking only that cluster's incident pairs instead of
	// the whole candidate set.
	nbrOff   []int32
	nbrPair  []int32
	nbrOther []record.ID
	// pairIdx maps a candidate pair to its index in cands.Pairs, the key
	// into the flat estimate cache below. Built once.
	pairIdx map[record.Pair]int32

	// est and exact cache estimate()'s result per candidate pair for the
	// current answers epoch (estAt == sess.KnownCount()): between crowd
	// batches the known set and the histogram are fixed, so every pair's
	// estimate is a constant that scoring reads out of a flat slice
	// instead of re-deriving through three map probes and a histogram
	// search per cross pair.
	est     []float64
	exact   []bool
	machine []float64     // machine score per candidate pair (static)
	estAt   int           // sess.KnownCount() the cache was built at
	estMode EstimatorMode // mode the cache was built under
	knownAt int           // prefix of sess.KnownOrdered() already ingested

	// scratches are the per-worker dense neighbor-estimate scratch
	// buffers of the scoring loops (index 0 serves every serial path).
	scratches []*estScratch
}

// opKey identifies an operation independent of its score, packed into
// one word so cache probes hash 8 bytes instead of a 4-field struct:
// the kind in the top two bits, then two 31-bit lanes — (record,
// cluster) for a split, (cluster A, cluster B) for a merge. Record IDs
// and cluster indices are far below 2³¹ at any supported scale.
type opKey uint64

type cachedOp struct {
	s         scoredOp
	verA      int
	verB      int
	answersAt int // sess.KnownCount() when scored
}

func keyOf(o Op) opKey {
	if o.Kind == SplitOp {
		return opKey(uint64(uint32(o.Record))<<31 | uint64(uint32(o.A)))
	}
	return opKey(uint64(1)<<62 | uint64(uint32(o.A))<<31 | uint64(uint32(o.B)))
}

func newState(c *cluster.Clustering, cands *pruning.Candidates, sess *crowd.Session) *state {
	st := &state{
		c:     c,
		cands: cands,
		sess:  sess,
		cache: make(map[opKey]cachedOp),
	}
	st.buildRecPairs()
	st.rebuildHistogram()
	return st
}

// buildRecPairs constructs the static record -> incident candidate-pair
// CSR (counting sort, exact capacity; per-record order follows
// cands.Pairs order) and the pair -> index map.
func (st *state) buildRecPairs() {
	n := st.c.Len()
	st.nbrOff = make([]int32, n+1)
	for _, sp := range st.cands.Pairs {
		st.nbrOff[sp.Pair.Lo+1]++
		st.nbrOff[sp.Pair.Hi+1]++
	}
	for r := 0; r < n; r++ {
		st.nbrOff[r+1] += st.nbrOff[r]
	}
	st.nbrPair = make([]int32, st.nbrOff[n])
	st.nbrOther = make([]record.ID, st.nbrOff[n])
	cur := make([]int32, n)
	copy(cur, st.nbrOff[:n])
	st.pairIdx = make(map[record.Pair]int32, len(st.cands.Pairs))
	st.machine = make([]float64, len(st.cands.Pairs))
	for i, sp := range st.cands.Pairs {
		lo, hi := sp.Pair.Lo, sp.Pair.Hi
		k := cur[lo]
		cur[lo]++
		st.nbrPair[k] = int32(i)
		st.nbrOther[k] = hi
		k = cur[hi]
		cur[hi]++
		st.nbrPair[k] = int32(i)
		st.nbrOther[k] = lo
		st.pairIdx[sp.Pair] = int32(i)
		st.machine[i] = sp.Score
	}
}

// ensureEstimates (re)builds the flat per-pair estimate cache when it
// is missing or was built for a different answers epoch or estimator
// mode. The refresh is incremental: newly crowdsourced pairs (the tail
// of the session's insertion-ordered A) flip their slots to exact, and
// the still-unknown candidates re-read the histogram from the static
// machine-score array — no per-pair map probes at all. Callers in the
// parallel scoring pool rely on scoreAll having ensured freshness
// serially first, so the check never writes concurrently.
func (st *state) ensureEstimates() {
	if st.est != nil && st.estAt == st.sess.KnownCount() && st.estMode == st.mode {
		return
	}
	if st.est == nil {
		st.est = make([]float64, len(st.cands.Pairs))
		st.exact = make([]bool, len(st.cands.Pairs))
	}
	known := st.sess.KnownOrdered()
	for _, p := range known[st.knownAt:] {
		if i, ok := st.pairIdx[p]; ok {
			fc, _ := st.sess.Known(p)
			st.est[i] = fc
			st.exact[i] = true
		}
	}
	st.knownAt = len(known)
	for i, ex := range st.exact {
		if ex {
			continue
		}
		if st.mode == IdentityEstimator {
			st.est[i] = st.machine[i]
		} else {
			st.est[i] = st.hist.Estimate(st.machine[i])
		}
	}
	st.estAt = st.sess.KnownCount()
	st.estMode = st.mode
}

// pairEstimate is estimate() served from the flat cache: candidate
// pairs read their slot, pruned pairs are exactly 0.
func (st *state) pairEstimate(p record.Pair) (fc float64, exact bool) {
	if i, ok := st.pairIdx[p]; ok {
		return st.est[i], st.exact[i]
	}
	return 0, true
}

// cachedScore returns a still-valid cached score for an op, if any. A
// zero-cost score survives answer epochs: every pair it read was exact
// (crowdsourced, or pruned and fixed at 0), and new answers can change
// neither those values nor which pairs the op spans while its clusters'
// versions hold — so only positive-cost scores are invalidated when the
// known set (and with it the histogram) grows.
func (st *state) cachedScore(o Op) (scoredOp, bool) {
	e, ok := st.cache[keyOf(o)]
	if !ok || (e.answersAt != st.sess.KnownCount() && e.s.cost != 0) {
		return scoredOp{}, false
	}
	if e.verA != st.ver(o.A) {
		return scoredOp{}, false
	}
	if o.Kind == MergeOp && e.verB != st.ver(o.B) {
		return scoredOp{}, false
	}
	return e.s, true
}

func (st *state) storeScore(s scoredOp) {
	o := s.op
	e := cachedOp{s: s, verA: st.ver(o.A), answersAt: st.sess.KnownCount()}
	if o.Kind == MergeOp {
		e.verB = st.ver(o.B)
	}
	st.cache[keyOf(o)] = e
}

// ver reads a cluster's mutation counter; indices past the slice (fresh
// clusters no apply has touched yet) are at version 0.
func (st *state) ver(i int) int {
	if i < len(st.version) {
		return st.version[i]
	}
	return 0
}

// bumpVer increments a cluster's mutation counter, growing the slice on
// demand (splits mint new cluster indices).
func (st *state) bumpVer(i int) {
	for len(st.version) <= i {
		st.version = append(st.version, 0)
	}
	st.version[i]++
}

// rebuildHistogram reconstructs the equi-depth estimator from every pair
// the session has crowdsourced so far (Section 5.2; also Lines 15-16 of
// Algorithm 4 and 21-22 of Algorithm 5).
func (st *state) rebuildHistogram() {
	// Iterate A in first-crowdsourced order, not map order: equal machine
	// scores with different crowd scores land in different equi-depth
	// buckets depending on sample order, so map iteration would make the
	// estimator — and everything downstream — vary run to run.
	known := st.sess.KnownOrdered()
	samples := make([]histogram.Sample, 0, len(known))
	for _, p := range known {
		fc, _ := st.sess.Known(p)
		samples = append(samples, histogram.Sample{Machine: st.cands.Score(p), Crowd: fc})
	}
	st.hist = histogram.Build(samples, histogram.DefaultBuckets)
	rec := st.sess.Recorder()
	rec.Count(MetricHistRebuilds, 1)
	rec.Gauge(MetricHistSamples, float64(len(samples)))
}

// estimate returns the best available f_c estimate for a pair: the exact
// crowd score when the pair is in A, the histogram mapping of its machine
// score when it is an uncrowdsourced candidate, and exactly 0 when the
// pair was eliminated by pruning (Section 3 fixes f_c = 0 for pruned
// pairs; they are never crowdsourced).
func (st *state) estimate(p record.Pair) (fc float64, exact bool) {
	if fc, ok := st.sess.Known(p); ok {
		return fc, true
	}
	if !st.cands.Contains(p) {
		return 0, true
	}
	if st.mode == IdentityEstimator {
		return st.cands.Score(p), false
	}
	return st.hist.Estimate(st.cands.Score(p)), false
}

// estScratch is a dense neighbor-estimate buffer: load stamps one
// record's candidate neighbors with their current estimates, and the
// scoring inner loops then read per-record estimates as two array
// indexes — no pair hashing on the hot path. The epoch stamp makes
// "clearing" between records a single increment. Each scoring worker
// owns one (see state.scratchFor).
type estScratch struct {
	epoch int64
	seen  []int64
	fc    []float64
	exact []bool
}

// load stamps r's candidate neighbors' estimates into the scratch.
func (st *state) load(sc *estScratch, r record.ID) {
	sc.epoch++
	ep := sc.epoch
	for k := st.nbrOff[r]; k < st.nbrOff[r+1]; k++ {
		pi := st.nbrPair[k]
		other := st.nbrOther[k]
		sc.seen[other] = ep
		sc.fc[other] = st.est[pi]
		sc.exact[other] = st.exact[pi]
	}
}

// at reads the estimate for the pair (loaded record, other): a stamped
// slot is a candidate pair's cached estimate; anything else was pruned
// and is exactly 0.
func (sc *estScratch) at(other record.ID) (fc float64, exact bool) {
	if sc.seen[other] == sc.epoch {
		return sc.fc[other], sc.exact[other]
	}
	return 0, true
}

// scratchFor returns worker w's scratch buffer, allocating on first
// use. Must be called serially (scoreAll pre-grows the slice before
// fanning out).
func (st *state) scratchFor(w int) *estScratch {
	for len(st.scratches) <= w {
		st.scratches = append(st.scratches, nil)
	}
	if st.scratches[w] == nil {
		n := st.c.Len()
		st.scratches[w] = &estScratch{
			seen:  make([]int64, n),
			fc:    make([]float64, n),
			exact: make([]bool, n),
		}
	}
	return st.scratches[w]
}

// scoreSplit evaluates the split of r from cluster a (Equations 5 and 7).
func (st *state) scoreSplit(r record.ID, a int) scoredOp {
	st.ensureEstimates()
	return st.scoreSplitWith(st.scratchFor(0), r, a)
}

// scoreSplitWith is scoreSplit against an explicit scratch buffer; the
// caller must have ensured the estimate cache is fresh.
func (st *state) scoreSplitWith(sc *estScratch, r record.ID, a int) scoredOp {
	s := scoredOp{op: Op{Kind: SplitOp, Record: r, A: a}}
	st.load(sc, r)
	for _, other := range st.c.Members(a) {
		if other == r {
			continue
		}
		fc, exact := sc.at(other)
		s.bStar += 1 - 2*fc
		if !exact {
			s.cost++
		}
	}
	return s
}

// scoreMerge evaluates the merger of clusters a and b (Equations 6 and 8).
func (st *state) scoreMerge(a, b int) scoredOp {
	st.ensureEstimates()
	return st.scoreMergeWith(st.scratchFor(0), a, b)
}

// scoreMergeWith is scoreMerge against an explicit scratch buffer; the
// caller must have ensured the estimate cache is fresh.
func (st *state) scoreMergeWith(sc *estScratch, a, b int) scoredOp {
	s := scoredOp{op: Op{Kind: MergeOp, A: a, B: b}}
	other := st.c.Members(b)
	for _, r1 := range st.c.Members(a) {
		st.load(sc, r1)
		for _, r2 := range other {
			fc, exact := sc.at(r2)
			s.bStar += 2*fc - 1
			if !exact {
				s.cost++
			}
		}
	}
	return s
}

// unknownPairs materializes the cost pairs of an op — the candidate
// pairs its benefit needs that are outside A — in the same order the
// scoring walk visits them. Only called for ops actually selected for
// crowdsourcing, so the slices scoring itself no longer allocates are
// built a handful at a time here.
func (st *state) unknownPairs(o Op) []record.Pair {
	st.ensureEstimates()
	var out []record.Pair
	visit := func(p record.Pair) {
		if _, exact := st.pairEstimate(p); !exact {
			out = append(out, p)
		}
	}
	if o.Kind == SplitOp {
		for _, other := range st.c.Members(o.A) {
			if other != o.Record {
				visit(record.MakePair(o.Record, other))
			}
		}
		return out
	}
	for _, r1 := range st.c.Members(o.A) {
		for _, r2 := range st.c.Members(o.B) {
			visit(record.MakePair(r1, r2))
		}
	}
	return out
}

// exactBenefit recomputes an operation's benefit assuming all of its
// pairs are now known (called after crowdsourcing the unknown ones).
func (st *state) exactBenefit(o Op) float64 {
	var s scoredOp
	switch o.Kind {
	case SplitOp:
		s = st.scoreSplit(o.Record, o.A)
	case MergeOp:
		s = st.scoreMerge(o.A, o.B)
	}
	if s.cost != 0 {
		panic(fmt.Sprintf("refine: exactBenefit(%v) still has %d unknown pairs", o, s.cost))
	}
	return s.bStar
}

// apply performs the operation on the working clustering and bumps the
// version counters of every touched cluster (including the fresh
// singleton a split creates). It returns the touched cluster indices so
// the drain loop can re-score exactly the operations the apply dirtied.
func (st *state) apply(o Op) [2]int {
	switch o.Kind {
	case SplitOp:
		idx := st.c.Split(o.Record)
		st.bumpVer(o.A)
		st.bumpVer(idx)
		return [2]int{o.A, idx}
	default:
		st.c.Merge(o.A, o.B)
		st.bumpVer(o.A)
		st.bumpVer(o.B)
		return [2]int{o.A, o.B}
	}
}

// collectOps lists every operation of interest on the current
// clustering, in enumeration order, together with each op's enumeration
// key (see enumKey): a split for every record in a non-singleton
// cluster, and a merge for every pair of clusters connected by at least
// one candidate pair. Cluster pairs with no candidate edge are omitted
// as an exact optimization: every one of their cross pairs has f_c = 0
// (pruned), so their merge benefit is at most -1 per cross pair and can
// never be selected by benefit or ratio.
func (st *state) collectOps() ([]Op, []enumKey) {
	var ops []Op
	var keys []enumKey
	for _, idx := range st.c.ClusterIndices() {
		if st.c.Size(idx) < 2 {
			continue
		}
		for pos, r := range st.c.Members(idx) {
			ops = append(ops, Op{Kind: SplitOp, Record: r, A: idx})
			keys = append(keys, splitKey(idx, pos))
		}
	}
	seen := make(map[uint64]struct{})
	for i, sp := range st.cands.Pairs {
		a := st.c.Assignment(sp.Pair.Lo)
		b := st.c.Assignment(sp.Pair.Hi)
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		key := clusterPairKey(a, b)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		ops = append(ops, Op{Kind: MergeOp, A: a, B: b})
		keys = append(keys, mergeKey(i))
	}
	return ops, keys
}

// clusterPairKey packs an ordered cluster-index pair into one word for
// the merge dedup maps (cheaper to hash than a two-int array key).
func clusterPairKey(a, b int) uint64 {
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// enumerate scores every operation of interest on the current clustering
// (cache-assisted, parallel when the uncached tail is large).
func (st *state) enumerate() []scoredOp {
	ops, _ := st.collectOps()
	return st.scoreAll(ops)
}

// applyKnownPositive drains the set O⁺: while there is an operation whose
// benefit is exactly known and positive, apply the best one (Lines 4-7 of
// Algorithms 4 and 5). This step needs no crowd at all. Termination is
// guaranteed because each applied operation decreases Λ′(R) by its exact
// benefit, which is a positive multiple of 1/workers.
//
// The original implementation re-enumerated and re-ranked every
// operation after every free apply; this one enumerates once into a lazy
// max-heap and, after each apply, re-scores only the operations touching
// the two mutated clusters (see drainHeap for the invariants that make
// that equivalent). The selection sequence — highest exact benefit,
// ties to the earliest op in enumeration order — is byte-identical.
func (st *state) applyKnownPositive() {
	h := st.buildDrainHeap()
	for h.Len() > 0 {
		e := heap.Pop(h).(heapEntry)
		if !st.entryValid(e) {
			continue // stale: a cluster it touches has mutated since scoring
		}
		touched := st.apply(e.s.op)
		st.sess.Recorder().Count(MetricFreeApplies, 1)
		st.pushDirty(h, touched)
	}
}

// sortByRatio orders positive-ratio, positive-cost ops by descending
// benefit-cost ratio with deterministic tie-breaking.
func sortByRatio(ops []scoredOp) []scoredOp {
	var out []scoredOp
	for _, s := range ops {
		if s.cost > 0 && s.ratio() > 0 {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ri, rj := out[i].ratio(), out[j].ratio()
		if ri != rj {
			return ri > rj
		}
		oi, oj := out[i].op, out[j].op
		if oi.Kind != oj.Kind {
			return oi.Kind < oj.Kind
		}
		if oi.A != oj.A {
			return oi.A < oj.A
		}
		if oi.B != oj.B {
			return oi.B < oj.B
		}
		return oi.Record < oj.Record
	})
	return out
}
