package core_test

import (
	"reflect"
	"testing"

	"acd/internal/cluster"
	"acd/internal/core"
	"acd/internal/crowd"
	"acd/internal/dataset"
	"acd/internal/pruning"
)

// smallInstance builds a small but realistic instance: a Restaurant-style
// dataset with a perfect crowd.
func smallInstance(t *testing.T) (*dataset.Dataset, *pruning.Candidates, *crowd.AnswerSet) {
	t.Helper()
	d := dataset.Restaurant(3)
	cands := pruning.Prune(d.Records, pruning.Options{})
	answers := crowd.BuildAnswers(cands.PairList(), d.TruthFn(), crowd.UniformDifficulty(0), crowd.ThreeWorker(1))
	return d, cands, answers
}

func TestACDPerfectCrowd(t *testing.T) {
	d, cands, answers := smallInstance(t)
	out := core.ACD(cands, answers, core.Config{Seed: 7})
	res := cluster.Evaluate(out.Clusters, d.Truth())
	// With a perfect crowd, precision must be 1 (no false merges can
	// survive: every issued pair is answered correctly) and recall is
	// bounded only by pruning (all duplicate pairs are candidates here).
	if res.Precision < 1 {
		t.Errorf("precision = %v with a perfect crowd", res.Precision)
	}
	if res.Recall < 0.95 {
		t.Errorf("recall = %v, expected near 1", res.Recall)
	}
	if out.Stats.Pairs == 0 || out.Stats.Iterations == 0 {
		t.Errorf("no crowdsourcing recorded: %+v", out.Stats)
	}
	if out.Stats.Pairs > len(cands.Pairs) {
		t.Errorf("issued %d pairs, more than |S| = %d", out.Stats.Pairs, len(cands.Pairs))
	}
}

func TestACDDeterministicForSeed(t *testing.T) {
	_, cands, answers := smallInstance(t)
	a := core.ACD(cands, answers, core.Config{Seed: 11})
	b := core.ACD(cands, answers, core.Config{Seed: 11})
	if !cluster.Equal(a.Clusters, b.Clusters) || a.Stats != b.Stats {
		t.Errorf("same seed produced different runs")
	}
}

func TestACDSkipRefinement(t *testing.T) {
	_, cands, answers := smallInstance(t)
	full := core.ACD(cands, answers, core.Config{Seed: 5})
	gen := core.ACD(cands, answers, core.Config{Seed: 5, SkipRefinement: true})
	// The refinement phase can only add crowdsourcing on top of the
	// generation phase.
	if gen.Stats.Pairs > full.Stats.Pairs {
		t.Errorf("PC-Pivot-only issued more pairs (%d) than full ACD (%d)",
			gen.Stats.Pairs, full.Stats.Pairs)
	}
	if !reflect.DeepEqual(gen.Generation, full.Generation) {
		t.Errorf("same seed, different generation stats: %+v vs %+v", gen.Generation, full.Generation)
	}
}

// TestACDRefinementRepairsErrors builds an adversarial instance where the
// crowd is wrong on pairs touching one record, and checks refinement
// improves Λ′ relative to generation alone.
func TestACDRefinementImprovesLambda(t *testing.T) {
	d := dataset.Restaurant(9)
	cands := pruning.Prune(d.Records, pruning.Options{})
	// A noisy crowd: 20% per-worker error everywhere.
	answers := crowd.BuildAnswers(cands.PairList(), d.TruthFn(), crowd.UniformDifficulty(0.2), crowd.ThreeWorker(2))

	scores := cluster.Scores{}
	for _, p := range cands.PairList() {
		scores[p] = answers.Score(p)
	}

	worse := 0
	for seed := int64(0); seed < 5; seed++ {
		gen := core.ACD(cands, answers, core.Config{Seed: seed, SkipRefinement: true})
		full := core.ACD(cands, answers, core.Config{Seed: seed})
		lGen := cluster.Lambda(gen.Clusters, scores)
		lFull := cluster.Lambda(full.Clusters, scores)
		if lFull > lGen+1e-9 {
			worse++
		}
	}
	if worse > 0 {
		t.Errorf("refinement increased Λ′ in %d/5 runs", worse)
	}
}
