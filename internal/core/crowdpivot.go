package core

import (
	"math/rand"

	"acd/internal/cluster"
	"acd/internal/crowd"
	"acd/internal/graph"
	"acd/internal/pruning"
	"acd/internal/record"
)

// buildGraph constructs G = (V_R, E_S) from the candidate set (Line 2 of
// Algorithms 1 and 3), bulk-loading the adjacency slices instead of
// paying per-edge sorted insertion.
func buildGraph(cands *pruning.Candidates) *graph.Graph {
	return graph.FromPairs(cands.N, cands.PairList())
}

// CrowdPivot runs Algorithm 1, the sequential crowd-based Pivot: in each
// iteration it picks a random unclustered record as pivot, crowdsources
// all of the pivot's incident candidate pairs as one batch, and forms a
// cluster from the pivot and every neighbor the crowd marks a duplicate
// (f_c > 0.5). By Lemma 1 the result is a 5-approximation of the
// Λ′(R)-minimizer in expectation.
func CrowdPivot(cands *pruning.Candidates, s *crowd.Session, rng *rand.Rand) *cluster.Clustering {
	return CrowdPivotPerm(cands, s, NewPermutation(cands.N, rng))
}

// CrowdPivotPerm is CrowdPivot with an explicit pivot order: each pivot
// is the unclustered record with the smallest permutation rank, which is
// distributionally identical to uniform random pivots when m is uniform
// (Section 4.2).
func CrowdPivotPerm(cands *pruning.Candidates, s *crowd.Session, m Permutation) *cluster.Clustering {
	if m.Len() != cands.N {
		panic("core: permutation size mismatch")
	}
	g := buildGraph(cands)
	var sets [][]record.ID
	for i := 0; i < m.Len(); i++ {
		pivot := m.At(i)
		if !g.Live(pivot) {
			continue
		}
		nbrs := g.Neighbors(pivot)
		pairs := make([]record.Pair, len(nbrs))
		for j, r := range nbrs {
			pairs[j] = record.MakePair(pivot, r)
		}
		scores := s.Ask(pairs)
		if s.Err() != nil {
			break // cancelled campaign: stop cleanly mid-iteration
		}
		members := []record.ID{pivot}
		for j, fc := range scores {
			if fc > 0.5 {
				members = append(members, nbrs[j])
			}
		}
		for _, r := range members {
			g.Remove(r)
		}
		sets = append(sets, members)
	}
	// An interrupted run leaves the unclustered records as singletons so
	// the result is still a valid partition (see Session.Err).
	if s.Err() != nil {
		for _, v := range g.LiveVertices() {
			sets = append(sets, []record.ID{v})
		}
	}
	c, err := cluster.FromSets(cands.N, sets)
	if err != nil {
		panic("core: Crowd-Pivot produced a non-partition: " + err.Error())
	}
	return c
}
