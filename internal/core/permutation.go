package core

import (
	"math/rand"

	"acd/internal/record"
)

// Permutation is a random order over the records 0..n-1, the ℳ of
// Section 4.2. Crowd-Pivot picks as each pivot the lowest-ranked
// unclustered record, which is equivalent to uniform random pivot
// selection; fixing ℳ makes the sequential and parallel algorithms
// comparable (Lemma 2).
type Permutation struct {
	order []record.ID // order[i] = record with permutation rank i
	rank  []int       // rank[r] = permutation rank of record r
}

// NewPermutation draws a uniform random permutation of 0..n-1.
func NewPermutation(n int, rng *rand.Rand) Permutation {
	order := make([]record.ID, n)
	for i := range order {
		order[i] = record.ID(i)
	}
	rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	return fromOrder(order)
}

// PermutationOf builds a Permutation from an explicit order; every record
// 0..len-1 must appear exactly once. Used by tests that replay the
// paper's worked examples.
func PermutationOf(order []record.ID) Permutation {
	seen := make([]bool, len(order))
	for _, r := range order {
		if int(r) >= len(order) || seen[r] {
			panic("core: invalid permutation")
		}
		seen[r] = true
	}
	return fromOrder(append([]record.ID(nil), order...))
}

func fromOrder(order []record.ID) Permutation {
	rank := make([]int, len(order))
	for i, r := range order {
		rank[r] = i
	}
	return Permutation{order: order, rank: rank}
}

// Len returns the permutation's universe size.
func (m Permutation) Len() int { return len(m.order) }

// Rank returns the permutation rank of record r (0-based).
func (m Permutation) Rank(r record.ID) int { return m.rank[r] }

// At returns the record with permutation rank i.
func (m Permutation) At(i int) record.ID { return m.order[i] }
