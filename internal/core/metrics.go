package core

// Metric names emitted by the cluster generation phase. Together they
// make the paper's analytical guarantees observable at runtime: each
// PC-Pivot round chooses the largest batch k with Σ_{j≤k} w_j ≤ ε·|P_k|
// (Equation 4), wastes at most Σw_j pairs versus the sequential
// Crowd-Pivot (Lemma 3), and therefore at most an ε fraction overall
// (Lemma 4). MetricPairsWasted ≤ MetricPredictedWasted ≤
// ε·MetricBudgetPairs must hold on every run; the per-round version of
// the invariant is carried by the "pivot.round" trace events.
const (
	// MetricRounds counts Partial-Pivot invocations (crowd iterations of
	// the generation phase — the quantity Figure 5 sweeps ε against).
	MetricRounds = "pivot/rounds"
	// MetricBatchK is the distribution of chosen batch sizes k.
	MetricBatchK = "pivot/batch_k"
	// MetricPairsIssued counts candidate pairs crowdsourced by the phase.
	MetricPairsIssued = "pivot/pairs_issued"
	// MetricPairsWasted counts issued pairs the sequential Crowd-Pivot
	// would not have issued (the actual waste).
	MetricPairsWasted = "pivot/pairs_wasted"
	// MetricPredictedWasted accumulates Σ_{j≤k} w_j over rounds: the
	// worst-case waste admitted by Equation 4, an upper bound on
	// MetricPairsWasted by Lemma 3.
	MetricPredictedWasted = "pivot/predicted_wasted"
	// MetricBudgetPairs accumulates |P_k| over rounds: the worst-case
	// pairs issued, whose ε fraction upper-bounds MetricPredictedWasted.
	MetricBudgetPairs = "pivot/budget_pairs"
	// MetricEpsilon is the ε the run was configured with (a gauge).
	MetricEpsilon = "pivot/epsilon"
)
