package core

import (
	"acd/internal/crowd"
	"acd/internal/graph"
	"acd/internal/record"
)

// BatchResult reports one Partial-Pivot invocation: the clusters it
// formed and its crowdsourcing accounting.
type BatchResult struct {
	// Clusters are the member sets formed in this batch, in pivot order.
	Clusters [][]record.ID
	// Issued is the number of candidate pairs crowdsourced by the batch.
	Issued int
	// Wasted is the number of issued pairs that the sequential
	// Crowd-Pivot (same permutation, same answers) would not have
	// issued. Lemma 3 bounds it by Σw_j; Lemma 4 by ε·Issued when the
	// batch size k is chosen via Equation 4.
	Wasted int
}

// PartialPivot runs Algorithm 2: it selects the k live records with the
// smallest permutation ranks as pivots, crowdsources every edge of g
// incident to any of them in a single batch, and then forms clusters
// pivot-by-pivot exactly as the sequential Crowd-Pivot would have
// (Lemma 2). Clustered vertices are removed from g, so the caller can
// chain batches; g plays the role of both G_i (input) and G_{i+1}
// (output).
//
// This standalone entry point allocates fresh scratch state per call;
// PCPivot threads one pivotRun through all of its rounds instead.
func PartialPivot(g *graph.Graph, k int, m Permutation, s *crowd.Session) BatchResult {
	pr := newPivotRun(g, m)
	pr.scan(noEpsilon, k, nil)
	return pr.partialPivot(s)
}

// lowestRanked returns the k live vertices of g with the smallest
// permutation ranks (fewer if g has fewer live vertices).
func lowestRanked(g *graph.Graph, k int, m Permutation) []record.ID {
	out := make([]record.ID, 0, k)
	for i := 0; i < m.Len() && len(out) < k; i++ {
		if r := m.At(i); g.Live(r) {
			out = append(out, r)
		}
	}
	return out
}

// WastedBounds returns w_1..w_k of Equation 3 for the k lowest-ranked
// live pivots of g: the worst-case number of wasted pairs each pivot can
// contribute. For pivot r_j,
//
//   - if r_j is adjacent (in g) to an earlier pivot, every edge of r_j
//     may be wasted except those to the earlier pivots themselves;
//   - otherwise only r_j's edges to vertices that are also adjacent to
//     an earlier pivot may be wasted.
//
// It shares the fused scan with chooseKBounds (with the Equation-4 stop
// disabled), so the bound definition lives in exactly one place.
func WastedBounds(g *graph.Graph, k int, m Permutation) []int {
	pr := newPivotRun(g, m)
	w := make([]int, 0, k)
	pr.scan(noEpsilon, k, &w)
	return w
}
