package core

import (
	"acd/internal/crowd"
	"acd/internal/graph"
	"acd/internal/record"
)

// BatchResult reports one Partial-Pivot invocation: the clusters it
// formed and its crowdsourcing accounting.
type BatchResult struct {
	// Clusters are the member sets formed in this batch, in pivot order.
	Clusters [][]record.ID
	// Issued is the number of candidate pairs crowdsourced by the batch.
	Issued int
	// Wasted is the number of issued pairs that the sequential
	// Crowd-Pivot (same permutation, same answers) would not have
	// issued. Lemma 3 bounds it by Σw_j; Lemma 4 by ε·Issued when the
	// batch size k is chosen via Equation 4.
	Wasted int
}

// PartialPivot runs Algorithm 2: it selects the k live records with the
// smallest permutation ranks as pivots, crowdsources every edge of g
// incident to any of them in a single batch, and then forms clusters
// pivot-by-pivot exactly as the sequential Crowd-Pivot would have
// (Lemma 2). Clustered vertices are removed from g, so the caller can
// chain batches; g plays the role of both G_i (input) and G_{i+1}
// (output).
func PartialPivot(g *graph.Graph, k int, m Permutation, s *crowd.Session) BatchResult {
	pivots := lowestRanked(g, k, m)

	// Gather P: all distinct live edges incident to any pivot (Line 3).
	var pairs []record.Pair
	seen := make(map[record.Pair]struct{})
	for _, p := range pivots {
		for _, nb := range g.Neighbors(p) {
			pr := record.MakePair(p, nb)
			if _, dup := seen[pr]; !dup {
				seen[pr] = struct{}{}
				pairs = append(pairs, pr)
			}
		}
	}

	// Crowdsource P in one batch (Line 4) and build H_i, the subgraph
	// induced by the positive edges P′ (Lines 5-6), as adjacency lists.
	scores := s.Ask(pairs)
	positive := make(map[record.ID][]record.ID)
	for i, pr := range pairs {
		if scores[i] > 0.5 {
			positive[pr.Lo] = append(positive[pr.Lo], pr.Hi)
			positive[pr.Hi] = append(positive[pr.Hi], pr.Lo)
		}
	}

	// Form clusters pivot-by-pivot (Lines 7-11), tracking which pairs the
	// sequential algorithm would have issued so the batch's wasted count
	// is exact: when pivot r_j is still unclustered, sequential
	// Crowd-Pivot issues r_j's edges to all still-live vertices. (Each
	// pivot-pivot edge is counted at most once: a pivot is removed at its
	// own turn with its cluster, so a later pivot never re-counts it.)
	res := BatchResult{Issued: len(pairs)}
	removed := make(map[record.ID]bool)
	seqIssued := 0
	for _, pivot := range pivots {
		if removed[pivot] {
			continue
		}
		for _, nb := range g.Neighbors(pivot) {
			if !removed[nb] {
				seqIssued++
			}
		}
		members := []record.ID{pivot}
		for _, nb := range positive[pivot] {
			if !removed[nb] {
				members = append(members, nb)
			}
		}
		for _, r := range members {
			removed[r] = true
		}
		res.Clusters = append(res.Clusters, members)
	}
	res.Wasted = res.Issued - seqIssued

	for _, members := range res.Clusters {
		for _, r := range members {
			g.Remove(r)
		}
	}
	return res
}

// lowestRanked returns the k live vertices of g with the smallest
// permutation ranks (fewer if g has fewer live vertices).
func lowestRanked(g *graph.Graph, k int, m Permutation) []record.ID {
	out := make([]record.ID, 0, k)
	for i := 0; i < m.Len() && len(out) < k; i++ {
		if r := m.At(i); g.Live(r) {
			out = append(out, r)
		}
	}
	return out
}

// WastedBounds returns w_1..w_k of Equation 3 for the k lowest-ranked
// live pivots of g: the worst-case number of wasted pairs each pivot can
// contribute. For pivot r_j,
//
//   - if r_j is adjacent (in g) to an earlier pivot, every edge of r_j
//     may be wasted except those to the earlier pivots themselves;
//   - otherwise only r_j's edges to vertices that are also adjacent to
//     an earlier pivot may be wasted.
func WastedBounds(g *graph.Graph, k int, m Permutation) []int {
	pivots := lowestRanked(g, k, m)
	w := make([]int, len(pivots))
	pivotIndex := make(map[record.ID]int, len(pivots))
	for j, p := range pivots {
		pivotIndex[p] = j
	}
	// coveredBy[v] = smallest pivot index l such that v is adjacent to
	// pivots[l]; -1 if none.
	covered := make(map[record.ID]int)
	for j, p := range pivots {
		adjEarlier := false
		for _, nb := range g.Neighbors(p) {
			if l, ok := pivotIndex[nb]; ok && l < j {
				adjEarlier = true
				break
			}
		}
		if adjEarlier {
			// All neighbors except earlier pivots.
			count := 0
			for _, nb := range g.Neighbors(p) {
				if l, ok := pivotIndex[nb]; ok && l < j {
					continue
				}
				count++
			}
			w[j] = count
		} else {
			// Neighbors shared with an earlier pivot.
			count := 0
			for _, nb := range g.Neighbors(p) {
				if l, ok := covered[nb]; ok && l < j {
					count++
				}
			}
			w[j] = count
		}
		for _, nb := range g.Neighbors(p) {
			if _, ok := covered[nb]; !ok {
				covered[nb] = j
			}
		}
	}
	return w
}
