package core_test

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"acd/internal/cluster"
	"acd/internal/core"
	"acd/internal/crowd"
	"acd/internal/record"
)

// TestACDCancelMidCampaign cancels the campaign context from inside the
// crowd fan-out and checks the pipeline stops cleanly: the context's
// error is reported, the partial clustering is still a valid partition,
// crowdsourcing stops promptly, and no worker goroutines leak.
func TestACDCancelMidCampaign(t *testing.T) {
	d, cands, answers := smallInstance(t)
	full := core.ACD(cands, answers, core.Config{Seed: 7})

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls int64
	src := crowd.AsyncSource{
		Fn: func(p record.Pair) float64 {
			if atomic.AddInt64(&calls, 1) == 25 {
				cancel()
			}
			return answers.Score(p)
		},
		Concurrency: 4,
		Setting:     crowd.ThreeWorker(1),
	}
	out := core.ACD(cands, src, core.Config{Seed: 7, Ctx: ctx})

	if !errors.Is(out.Err, context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", out.Err)
	}
	// The interrupted run is still a valid partition over every record:
	// Evaluate walks all assignments and panics on a corrupt clustering.
	if out.Clusters.Len() != len(d.Records) {
		t.Errorf("partial clustering covers %d records, want %d", out.Clusters.Len(), len(d.Records))
	}
	cluster.Evaluate(out.Clusters, d.Truth())
	// Crowdsourcing stopped promptly: at most one in-flight batch worth
	// of questions after the cancellation, and well short of a full run.
	if c := atomic.LoadInt64(&calls); int(c) >= full.Stats.Pairs {
		t.Errorf("cancelled run asked %d pairs, full run asks %d", c, full.Stats.Pairs)
	}

	// The worker pool drains and exits: goroutine count returns to
	// baseline (polled; the runtime needs a moment to reap them).
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after cancellation", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestACDPreCancelledContext: a context cancelled before the run starts
// yields an all-singletons partition without consulting the crowd.
func TestACDPreCancelledContext(t *testing.T) {
	d, cands, answers := smallInstance(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls int64
	src := crowd.SourceFunc{
		Fn: func(p record.Pair) float64 {
			atomic.AddInt64(&calls, 1)
			return answers.Score(p)
		},
		Setting: crowd.ThreeWorker(1),
	}
	out := core.ACD(cands, src, core.Config{Seed: 7, Ctx: ctx})
	if !errors.Is(out.Err, context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", out.Err)
	}
	if atomic.LoadInt64(&calls) != 0 {
		t.Errorf("pre-cancelled run still asked the crowd %d times", calls)
	}
	if got := out.Clusters.NumClusters(); got != len(d.Records) {
		t.Errorf("pre-cancelled run produced %d clusters, want all %d singletons", got, len(d.Records))
	}
	if out.Stats.Pairs != 0 || out.Stats.Cents != 0 {
		t.Errorf("pre-cancelled run charged accounting: %+v", out.Stats)
	}
}

// TestACDNilContextUnchanged pins that runs without a context are
// byte-identical to runs with a never-cancelled one.
func TestACDNilContextUnchanged(t *testing.T) {
	_, cands, answers := smallInstance(t)
	plain := core.ACD(cands, answers, core.Config{Seed: 11})
	bound := core.ACD(cands, answers, core.Config{Seed: 11, Ctx: context.Background()})
	if !cluster.Equal(plain.Clusters, bound.Clusters) || plain.Stats != bound.Stats {
		t.Errorf("binding a live context changed the run")
	}
	if bound.Err != nil {
		t.Errorf("Err = %v on a never-cancelled run", bound.Err)
	}
}
