package core

import (
	"math/rand"

	"acd/internal/cluster"
	"acd/internal/crowd"
	"acd/internal/graph"
	"acd/internal/pruning"
	"acd/internal/record"
)

// DefaultEpsilon is the wasted-pair budget the paper settles on after the
// tuning experiments of Section 6.2 (Figure 5): ε = 0.1 "strikes a good
// balance between efficiency and crowdsourcing cost".
const DefaultEpsilon = 0.1

// PCStats reports the crowdsourcing accounting of a PC-Pivot run.
type PCStats struct {
	// Batches is the number of Partial-Pivot invocations, i.e. the
	// number of crowd iterations the cluster generation phase needs.
	// (Batches that issue no pairs — all-singleton tails — still count
	// here as algorithm rounds but cost no crowd iteration.)
	Batches int
	// Issued is the total number of candidate pairs crowdsourced.
	Issued int
	// Wasted is how many of those the sequential Crowd-Pivot would not
	// have issued; Lemma 4 guarantees Wasted ≤ ε·Issued.
	Wasted int
	// Rounds is the per-batch (k, issued, wasted) sequence, in batch
	// order. The golden determinism tests hash it to pin the algorithm's
	// round-by-round behavior, not just the totals.
	Rounds []RoundStat
}

// RoundStat is the crowdsourcing accounting of a single Partial-Pivot
// batch within a PC-Pivot run.
type RoundStat struct {
	// K is the pivot batch size chosen by Equation 4 for this round.
	K int
	// Issued is the number of candidate pairs this batch crowdsourced.
	Issued int
	// Wasted is the number of issued pairs the sequential Crowd-Pivot
	// would not have issued.
	Wasted int
}

// PCPivot runs Algorithm 3, the parallel Crowd-Pivot: it repeatedly picks
// the largest pivot batch k satisfying Equation 4 (worst-case wasted
// pairs at most an ε fraction of the pairs issued) and applies
// Partial-Pivot, until every record is clustered. It returns the same
// clustering as CrowdPivotPerm under the same permutation and answers
// (Lemma 2), so Lemma 1's 5-approximation guarantee carries over.
func PCPivot(cands *pruning.Candidates, s *crowd.Session, eps float64, rng *rand.Rand) (*cluster.Clustering, PCStats) {
	return PCPivotPerm(cands, s, eps, NewPermutation(cands.N, rng))
}

// PCPivotPerm is PCPivot with an explicit permutation.
func PCPivotPerm(cands *pruning.Candidates, s *crowd.Session, eps float64, m Permutation) (*cluster.Clustering, PCStats) {
	if m.Len() != cands.N {
		panic("core: permutation size mismatch")
	}
	rec := s.Recorder()
	rec.Gauge(MetricEpsilon, eps)
	g := buildGraph(cands)
	run := newPivotRun(g, m)
	var sets [][]record.ID
	var stats PCStats
	for g.LiveCount() > 0 {
		k, sumW, pk := run.scan(eps, maxPivots, nil)
		res := run.partialPivot(s)
		if s.Err() != nil {
			break // cancelled campaign: stop cleanly mid-iteration
		}
		sets = append(sets, res.Clusters...)
		stats.Batches++
		stats.Issued += res.Issued
		stats.Wasted += res.Wasted
		stats.Rounds = append(stats.Rounds, RoundStat{K: k, Issued: res.Issued, Wasted: res.Wasted})

		rec.Count(MetricRounds, 1)
		rec.Count(MetricPairsIssued, int64(res.Issued))
		rec.Count(MetricPairsWasted, int64(res.Wasted))
		rec.Count(MetricPredictedWasted, int64(sumW))
		rec.Count(MetricBudgetPairs, int64(pk))
		rec.Observe(MetricBatchK, float64(k))
		if rec.Tracing() {
			rec.Trace("pivot.round", map[string]any{
				"round": stats.Batches, "k": k, "sum_w": sumW, "p_k": pk,
				"epsilon": eps, "issued": res.Issued, "wasted": res.Wasted,
				"clusters": len(res.Clusters), "live": g.LiveCount(),
			})
		}
	}
	// An interrupted run leaves the unclustered records as singletons so
	// the result is still a valid partition; the caller distinguishes it
	// from a completed run via the session error.
	if s.Err() != nil {
		for _, v := range g.LiveVertices() {
			sets = append(sets, []record.ID{v})
		}
	}
	c, err := cluster.FromSets(cands.N, sets)
	if err != nil {
		panic("core: PC-Pivot produced a non-partition: " + err.Error())
	}
	return c, stats
}

// chooseK derives the maximum k satisfying Equation 4 on the current
// graph: Σ_{j≤k} w_j ≤ ε·|P_k|, where P_k is the set of edges incident to
// the first k pivots. A linear scan over the live vertices in permutation
// order maintains both sides incrementally. k = 1 always satisfies the
// constraint (w_1 = 0), so progress is guaranteed.
func chooseK(g *graph.Graph, m Permutation, eps float64) int {
	k, _, _ := chooseKBounds(g, m, eps)
	return k
}

// chooseKBounds is chooseK exposing both sides of the accepted Equation 4
// constraint: the chosen k, Σ_{j≤k} w_j (the worst-case wasted pairs the
// batch admits — the bound Lemma 3 holds the actual waste to), and |P_k|
// (the pairs the batch will issue in the worst case, whose ε fraction is
// the budget). The observability layer records both so the invariant
// Σw_j ≤ ε·|P_k| is checkable on every round of every run.
//
// The implementation is the fused scan of pivotRun, which computes the
// pivot sequence, the Equation-3 bounds, and the budget in one walk and
// stops at the first violation; this wrapper exists for tests and
// callers outside a PC-Pivot run loop.
func chooseKBounds(g *graph.Graph, m Permutation, eps float64) (k, sumWAtK, pkAtK int) {
	return newPivotRun(g, m).scan(eps, maxPivots, nil)
}
