// Package core implements the cluster generation phase of ACD
// (Section 4) and the full three-phase pipeline.
//
// Paper artifacts:
//
//   - CrowdPivot / CrowdPivotPerm — Algorithm 1, the sequential
//     crowd-based Pivot: one crowd iteration per pivot, 5-approximation
//     of Λ in expectation (Lemma 1).
//   - PartialPivot — Algorithm 2, one batched round: crowdsource the
//     pairs incident to the first k pivots at once, then resolve the
//     batch sequentially. Its worst-case wasted pairs are bounded by
//     Σ_{j≤k} w_j (Equation 3, Lemma 3).
//   - WastedBounds — the per-pivot worst-case waste bounds w_j used by
//     Equation 3.
//   - PCPivot / PCPivotPerm — Algorithm 3, the parallel Crowd-Pivot: on
//     each round pick the largest k with Σ_{j≤k} w_j ≤ ε·|P_k|
//     (Equation 4), so total waste stays under ε·issued (Lemma 4), and
//     the result equals the sequential run on the same permutation ℳ
//     (Lemma 2).
//   - ACD — the pipeline: pruned candidates → PC-Pivot → PC-Refine.
//   - DefaultEpsilon — ε = 0.1 (Section 6.2, Figure 5).
//
// The instrumented runs publish the pivot/* metrics of metrics.go —
// notably pivot/pairs_wasted vs pivot/predicted_wasted vs ε·budget, the
// measurable form of Lemmas 3–4, asserted on live traces by
// TestLemma3WastedPairBound.
package core
