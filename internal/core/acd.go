package core

import (
	"context"
	"math/rand"

	"acd/internal/cluster"
	"acd/internal/crowd"
	"acd/internal/obs"
	"acd/internal/pruning"
	"acd/internal/refine"
)

// Config parameterizes a full ACD run.
type Config struct {
	// Epsilon is PC-Pivot's wasted-pair budget (Equation 4). Zero value
	// means DefaultEpsilon (0.1, the paper's choice after Section 6.2).
	Epsilon float64
	// RefineX is the divisor in the refinement budget T = N_m/x. Zero
	// value means refine.DefaultX (8, the paper's choice after
	// Appendix C).
	RefineX int
	// SkipRefinement disables the cluster refinement phase, producing
	// the "crippled" PC-Pivot-only variant the paper also evaluates.
	SkipRefinement bool
	// Seed drives the random permutation. Runs with equal seeds and
	// answers are identical.
	Seed int64
	// Obs, when set, receives the run's metrics and trace events,
	// overriding any recorder the crowd source carries. Nil leaves the
	// session's inherited recorder (if any) in place; metrics change
	// nothing about the run itself.
	Obs *obs.Recorder
	// Ctx, when set, makes the run cancellable: once the context is
	// cancelled the crowd session stops answering, the running phase
	// breaks out of its iteration loop mid-batch, and Output.Err
	// reports the cancellation. Nil means the run cannot be cancelled.
	Ctx context.Context
}

// Output is the result of a full ACD run.
type Output struct {
	// Clusters is the final deduplication. On an interrupted run
	// (Err != nil) it is still a valid partition — whatever had been
	// clustered when the campaign stopped, with the rest as singletons —
	// but not a completed deduplication.
	Clusters *cluster.Clustering
	// Stats is the crowdsourcing accounting across both crowd phases.
	Stats crowd.Stats
	// Generation reports the cluster generation phase's internals.
	Generation PCStats
	// Err is nil for a completed run; on a cancelled campaign it is the
	// context's error.
	Err error
}

// ACD runs the complete pipeline of Section 3 on a pre-pruned candidate
// set: cluster generation with PC-Pivot followed by cluster refinement
// with PC-Refine, all answered from the given answer set. (The pruning
// phase itself is pruning.Prune; it is machine-only and shared by every
// method, mirroring the paper's experimental setup.)
func ACD(cands *pruning.Candidates, answers crowd.Source, cfg Config) Output {
	eps := cfg.Epsilon
	if eps == 0 {
		eps = DefaultEpsilon
	}
	x := cfg.RefineX
	if x == 0 {
		x = refine.DefaultX
	}
	sess := crowd.NewSession(answers)
	if cfg.Obs != nil {
		sess.SetRecorder(cfg.Obs)
	}
	if cfg.Ctx != nil {
		sess.Bind(cfg.Ctx)
	}
	rec := sess.Recorder()
	rng := rand.New(rand.NewSource(cfg.Seed))

	doneGen := rec.StartPhase("generate")
	clusters, gen := PCPivot(cands, sess, eps, rng)
	doneGen()
	if !cfg.SkipRefinement && sess.Err() == nil {
		doneRef := rec.StartPhase("refine")
		clusters = refine.PCRefine(clusters, cands, sess, x)
		doneRef()
	} else {
		clusters.Compact()
	}
	return Output{Clusters: clusters, Stats: sess.Stats(), Generation: gen, Err: sess.Err()}
}
