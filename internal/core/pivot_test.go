package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"acd/internal/cluster"
	"acd/internal/crowd"
	"acd/internal/graph"
	"acd/internal/pruning"
	"acd/internal/record"
)

// figure2 returns the candidate set and crowd scores of Figure 2a
// (vertices a..f = 0..5), where every drawn edge has f_c > 0.5.
func figure2() (*pruning.Candidates, map[record.Pair]float64) {
	scores := map[record.Pair]float64{
		record.MakePair(0, 1): 0.8, // (a,b)
		record.MakePair(1, 2): 0.9, // (b,c)
		record.MakePair(0, 2): 0.7, // (a,c)
		record.MakePair(0, 4): 0.6, // (a,e)
		record.MakePair(3, 4): 0.8, // (d,e)
		record.MakePair(4, 5): 0.7, // (e,f)
		record.MakePair(3, 5): 0.9, // (d,f)
		record.MakePair(2, 3): 0.6, // (c,d)
	}
	machine := cluster.Scores{}
	for p := range scores {
		machine[p] = 0.5 // any value above tau
	}
	return pruning.FromScores(6, machine, 0.3), scores
}

func session(scores map[record.Pair]float64) *crowd.Session {
	return crowd.NewSession(crowd.FixedAnswers(scores, crowd.Config{}))
}

func TestCrowdPivotFigure2Case1(t *testing.T) {
	// Permutation (b, f, a, c, d, e): pivots b then f; clusters {b,a,c}
	// and {f,d,e}; 4 pairs issued over 2 iterations.
	cands, scores := figure2()
	s := session(scores)
	m := PermutationOf([]record.ID{1, 5, 0, 2, 3, 4})
	c := CrowdPivotPerm(cands, s, m)
	want := cluster.MustFromSets(6, [][]record.ID{{0, 1, 2}, {3, 4, 5}})
	if !cluster.Equal(c, want) {
		t.Errorf("clusters = %v", c.Sets())
	}
	st := s.Stats()
	if st.Pairs != 4 || st.Iterations != 2 {
		t.Errorf("stats = %+v, want 4 pairs in 2 iterations", st)
	}
}

func TestPartialPivotFigure2Cases(t *testing.T) {
	cases := []struct {
		name       string
		order      []record.ID
		wantSets   [][]record.ID
		wantIssued int
		wantWasted int
	}{
		// Case 1: pivots b, f — disjoint neighborhoods, no waste.
		{"case1", []record.ID{1, 5, 0, 2, 3, 4}, [][]record.ID{{0, 1, 2}, {3, 4, 5}}, 4, 0},
		// Case 2: pivots b, e — d(b,e)=2; edge (e,a) is wasted.
		{"case2", []record.ID{1, 4, 0, 2, 3, 5}, [][]record.ID{{0, 1, 2}, {3, 4, 5}}, 5, 1},
		// Case 3: pivots b, c — adjacent; c is absorbed into b's cluster.
		// Sequential Crowd-Pivot issues only (b,a) and (b,c), so both
		// (c,a) and (c,d) are wasted under the paper's formal definition
		// (the Case 3 prose mentions only (c,d), but Equation 3 gives
		// w_2 = 2 and Lemma 3 calls that bound tight).
		{"case3", []record.ID{1, 2, 0, 5, 3, 4}, [][]record.ID{{0, 1, 2}, {3, 4, 5}}, 4, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cands, scores := figure2()
			s := session(scores)
			m := PermutationOf(tc.order)
			g := buildGraph(cands)
			res := PartialPivot(g, 2, m, s)
			if res.Issued != tc.wantIssued {
				t.Errorf("issued = %d, want %d", res.Issued, tc.wantIssued)
			}
			if res.Wasted != tc.wantWasted {
				t.Errorf("wasted = %d, want %d", res.Wasted, tc.wantWasted)
			}
			// Case 3 forms only one cluster in the batch; the others two.
			if tc.name == "case3" {
				if len(res.Clusters) != 1 {
					t.Errorf("case3 formed %d clusters, want 1", len(res.Clusters))
				}
				if !reflect.DeepEqual(res.Clusters[0], []record.ID{1, 0, 2}) {
					t.Errorf("case3 cluster = %v", res.Clusters[0])
				}
			} else if len(res.Clusters) != 2 {
				t.Errorf("%s formed %d clusters, want 2", tc.name, len(res.Clusters))
			}
		})
	}
}

func TestPartialPivotWastedCase2Detail(t *testing.T) {
	// In case 2 the wasted pair must be exactly (e,a): batch issues
	// (b,a),(b,c),(e,a),(e,d),(e,f); sequential issues all but (e,a).
	cands, scores := figure2()
	s := session(scores)
	m := PermutationOf([]record.ID{1, 4, 0, 2, 3, 5})
	g := buildGraph(cands)
	res := PartialPivot(g, 2, m, s)
	if res.Issued != 5 || res.Wasted != 1 {
		t.Fatalf("issued=%d wasted=%d", res.Issued, res.Wasted)
	}
	if s.Stats().Pairs != 5 || s.Stats().Iterations != 1 {
		t.Errorf("session stats %+v", s.Stats())
	}
}

func TestWastedBoundsFigure2(t *testing.T) {
	cands, _ := figure2()
	// Case 2: pivots b, e not adjacent; e shares neighbor a with b → w = (0, 1).
	g := buildGraph(cands)
	w := WastedBounds(g, 2, PermutationOf([]record.ID{1, 4, 0, 2, 3, 5}))
	if !reflect.DeepEqual(w, []int{0, 1}) {
		t.Errorf("case2 bounds = %v, want [0 1]", w)
	}
	// Case 3: pivots b, c adjacent; w_2 = neighbors of c except b = {a, d} → 2.
	w = WastedBounds(g, 2, PermutationOf([]record.ID{1, 2, 0, 5, 3, 4}))
	if !reflect.DeepEqual(w, []int{0, 2}) {
		t.Errorf("case3 bounds = %v, want [0 2]", w)
	}
	// Case 1: pivots b, f disjoint → no waste possible.
	w = WastedBounds(g, 2, PermutationOf([]record.ID{1, 5, 0, 2, 3, 4}))
	if !reflect.DeepEqual(w, []int{0, 0}) {
		t.Errorf("case1 bounds = %v, want [0 0]", w)
	}
}

// randomInstance builds a random candidate set and consistent fixed crowd
// scores for property tests.
func randomInstance(rng *rand.Rand) (*pruning.Candidates, map[record.Pair]float64) {
	n := 2 + rng.Intn(30)
	machine := cluster.Scores{}
	scores := map[record.Pair]float64{}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.25 {
				p := record.MakePair(record.ID(i), record.ID(j))
				machine[p] = 0.31 + 0.69*rng.Float64()
				// Crowd score on a 3-worker grid.
				scores[p] = float64(rng.Intn(4)) / 3
			}
		}
	}
	return pruning.FromScores(n, machine, 0.3), scores
}

// TestLemma2Equivalence: PC-Pivot produces exactly the sequential
// Crowd-Pivot clustering under the same permutation and answers, for
// random graphs, permutations, and ε values.
func TestLemma2Equivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cands, scores := randomInstance(rng)
		m := NewPermutation(cands.N, rng)
		eps := []float64{0, 0.1, 0.4, 0.8, 1}[rng.Intn(5)]

		seq := CrowdPivotPerm(cands, session(scores), m)
		par, _ := PCPivotPerm(cands, session(scores), eps, m)
		return cluster.Equal(seq, par)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestLemma2PartialPivotPrefix: a single Partial-Pivot batch reproduces
// the prefix of clusters the sequential algorithm forms with pivots
// ranked no higher than r_k.
func TestLemma2PartialPivotPrefix(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cands, scores := randomInstance(rng)
		m := NewPermutation(cands.N, rng)
		k := 1 + rng.Intn(cands.N)

		g := buildGraph(cands)
		res := PartialPivot(g, k, m, session(scores))

		// Sequential reference: run Crowd-Pivot until it would pick a
		// pivot ranked above the k-th smallest in the initial graph.
		gseq := buildGraph(cands)
		pivots := lowestRanked(gseq, k, m)
		if len(pivots) == 0 {
			return len(res.Clusters) == 0
		}
		maxRank := m.Rank(pivots[len(pivots)-1])
		s := session(scores)
		var seqClusters [][]record.ID
		for i := 0; i <= maxRank; i++ {
			pivot := m.At(i)
			if !gseq.Live(pivot) {
				continue
			}
			nbrs := gseq.Neighbors(pivot)
			pairs := make([]record.Pair, len(nbrs))
			for j, r := range nbrs {
				pairs[j] = record.MakePair(pivot, r)
			}
			sc := s.Ask(pairs)
			members := []record.ID{pivot}
			for j, fc := range sc {
				if fc > 0.5 {
					members = append(members, nbrs[j])
				}
			}
			for _, r := range members {
				gseq.Remove(r)
			}
			seqClusters = append(seqClusters, members)
		}
		return reflect.DeepEqual(normalize(res.Clusters), normalize(seqClusters))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func normalize(sets [][]record.ID) [][]record.ID {
	out := make([][]record.ID, len(sets))
	for i, s := range sets {
		cp := append([]record.ID(nil), s...)
		for a := 1; a < len(cp); a++ {
			for b := a; b > 0 && cp[b] < cp[b-1]; b-- {
				cp[b], cp[b-1] = cp[b-1], cp[b]
			}
		}
		out[i] = cp
	}
	return out
}

// TestLemma3WastedBound: the actual wasted pairs of a Partial-Pivot batch
// never exceed Σ w_j.
func TestLemma3WastedBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cands, scores := randomInstance(rng)
		m := NewPermutation(cands.N, rng)
		k := 1 + rng.Intn(cands.N)
		g := buildGraph(cands)
		bound := 0
		for _, w := range WastedBounds(g, k, m) {
			bound += w
		}
		res := PartialPivot(g, k, m, session(scores))
		return res.Wasted <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestLemma4EpsilonGuarantee: in every PC-Pivot run, wasted pairs are at
// most an ε fraction of issued pairs (the deterministic form implied by
// choosing k with Equation 4 and Lemma 3's worst-case bound).
func TestLemma4EpsilonGuarantee(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cands, scores := randomInstance(rng)
		m := NewPermutation(cands.N, rng)
		eps := []float64{0, 0.1, 0.3, 0.7}[rng.Intn(4)]
		_, stats := PCPivotPerm(cands, session(scores), eps, m)
		return float64(stats.Wasted) <= eps*float64(stats.Issued)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestEpsilonZeroNoWaste: with ε = 0, PC-Pivot never issues a wasted pair.
func TestEpsilonZeroNoWaste(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cands, scores := randomInstance(rng)
		m := NewPermutation(cands.N, rng)
		_, stats := PCPivotPerm(cands, session(scores), 0, m)
		return stats.Wasted == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestParallelismMonotone: larger ε can only reduce (or keep) the number
// of batches, and never increases it below 1.
func TestParallelismMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		cands, scores := randomInstance(rng)
		m := NewPermutation(cands.N, rng)
		prev := -1
		for _, eps := range []float64{0, 0.1, 0.4, 1} {
			_, stats := PCPivotPerm(cands, session(scores), eps, m)
			if stats.Batches < 1 {
				t.Fatalf("batches = %d", stats.Batches)
			}
			if prev != -1 && stats.Batches > prev {
				t.Errorf("eps increase raised batches from %d to %d", prev, stats.Batches)
			}
			prev = stats.Batches
		}
	}
}

// TestCrowdPivotSingletons: with no candidate pairs, everything becomes a
// singleton and nothing is crowdsourced.
func TestCrowdPivotSingletons(t *testing.T) {
	cands := pruning.FromScores(5, cluster.Scores{}, 0.3)
	s := session(map[record.Pair]float64{})
	rng := rand.New(rand.NewSource(1))
	c := CrowdPivot(cands, s, rng)
	if c.NumClusters() != 5 {
		t.Errorf("clusters = %d, want 5", c.NumClusters())
	}
	if st := s.Stats(); st.Pairs != 0 || st.Iterations != 0 {
		t.Errorf("stats = %+v", st)
	}
	// PC-Pivot handles the same case in one batch.
	s2 := session(map[record.Pair]float64{})
	c2, stats := PCPivot(cands, s2, 0.1, rng)
	if c2.NumClusters() != 5 || stats.Batches != 1 || stats.Issued != 0 {
		t.Errorf("PC-Pivot singleton run: clusters=%d stats=%+v", c2.NumClusters(), stats)
	}
}

// TestNegativeAnswersSplitAll: if the crowd rejects every pair, every
// record ends up alone.
func TestNegativeAnswersSplitAll(t *testing.T) {
	cands, scores := figure2()
	for p := range scores {
		scores[p] = 0
	}
	c := CrowdPivotPerm(cands, session(scores), PermutationOf([]record.ID{0, 1, 2, 3, 4, 5}))
	if c.NumClusters() != 6 {
		t.Errorf("clusters = %d, want 6", c.NumClusters())
	}
}

// TestPermutationOfValidation ensures invalid permutations panic.
func TestPermutationOfValidation(t *testing.T) {
	for _, bad := range [][]record.ID{
		{0, 0, 1},
		{0, 1, 5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PermutationOf(%v) should panic", bad)
				}
			}()
			PermutationOf(bad)
		}()
	}
	m := PermutationOf([]record.ID{2, 0, 1})
	if m.Rank(2) != 0 || m.At(1) != 0 || m.Len() != 3 {
		t.Errorf("permutation accessors wrong")
	}
}

// TestGraphUntouchedByPCPivot: PCPivot must not mutate the caller's
// candidate set.
func TestCandidatesUntouched(t *testing.T) {
	cands, scores := figure2()
	before := len(cands.Pairs)
	rng := rand.New(rand.NewSource(2))
	PCPivot(cands, session(scores), 0.1, rng)
	if len(cands.Pairs) != before {
		t.Errorf("candidate set mutated")
	}
}

var _ = graph.New // keep graph import if helpers change
