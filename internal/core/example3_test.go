package core

import (
	"math/rand"
	"testing"

	"acd/internal/cluster"
	"acd/internal/pruning"
	"acd/internal/record"
)

// example3Instance builds the Appendix B instance: the candidate graph
// of Figure 9a with machine scores mirroring the crowd scores.
func example3Instance() (*pruning.Candidates, map[record.Pair]float64) {
	scores := map[record.Pair]float64{
		record.MakePair(0, 1): 0.8, // (a,b)
		record.MakePair(0, 2): 0.7, // (a,c)
		record.MakePair(1, 2): 0.9, // (b,c)
		record.MakePair(2, 3): 0.6, // (c,d)
		record.MakePair(0, 3): 0.4, // (a,d)
		record.MakePair(0, 4): 0.3, // (a,e)
		record.MakePair(3, 4): 0.8, // (d,e)
		record.MakePair(3, 5): 0.8, // (d,f)
		record.MakePair(4, 5): 0.8, // (e,f)
	}
	machine := cluster.Scores{}
	for p, fc := range scores {
		f := fc
		if f <= 0.31 {
			f = 0.31
		}
		machine[p] = f
	}
	return pruning.FromScores(6, machine, 0.3), scores
}

// TestExample3Generation runs the actual PC-Pivot on Example 3's setup:
// permutation (c,e,b,d,a,f) with ε = 0.4 must select pivots c and e in a
// single batch, issue exactly the six edges incident to them, and emit
// the clusters {a,b,c,d}, {e,f} of Figure 9b.
func TestExample3Generation(t *testing.T) {
	cands, scores := example3Instance()
	s := session(scores)
	m := PermutationOf([]record.ID{2, 4, 1, 3, 0, 5}) // (c,e,b,d,a,f)

	c, stats := PCPivotPerm(cands, s, 0.4, m)

	want := cluster.MustFromSets(6, [][]record.ID{{0, 1, 2, 3}, {4, 5}})
	if !cluster.Equal(c, want) {
		t.Errorf("clusters = %v, want {a,b,c,d},{e,f}", c.Sets())
	}
	if stats.Batches != 1 {
		t.Errorf("batches = %d, want 1 (the example finishes in one iteration)", stats.Batches)
	}
	if stats.Issued != 6 {
		t.Errorf("issued = %d, want 6", stats.Issued)
	}
	st := s.Stats()
	if st.Pairs != 6 || st.Iterations != 1 {
		t.Errorf("session stats %+v, want 6 pairs in 1 iteration", st)
	}
	// The six issued pairs are exactly those incident to c and e.
	wantPairs := []record.Pair{
		record.MakePair(0, 2), record.MakePair(1, 2), record.MakePair(2, 3),
		record.MakePair(0, 4), record.MakePair(3, 4), record.MakePair(4, 5),
	}
	for _, p := range wantPairs {
		if _, known := s.Known(p); !known {
			t.Errorf("pair %v not issued", p)
		}
	}
	for _, p := range []record.Pair{record.MakePair(0, 1), record.MakePair(0, 3), record.MakePair(3, 5)} {
		if _, known := s.Known(p); known {
			t.Errorf("pair %v should not be issued during generation", p)
		}
	}
}

// TestExample3ChooseK verifies the k selection itself: with ε = 0.4 the
// constraint admits pivots c and e (Σw = 2 ≤ 0.4·6) but not b
// (Σw = 3 > 0.4·7).
func TestExample3ChooseK(t *testing.T) {
	cands, _ := example3Instance()
	g := buildGraph(cands)
	m := PermutationOf([]record.ID{2, 4, 1, 3, 0, 5})
	if k := chooseK(g, m, 0.4); k != 2 {
		t.Errorf("chooseK(0.4) = %d, want 2", k)
	}
	// ε = 0: only the first pivot qualifies (w_2 = 2 > 0).
	if k := chooseK(g, m, 0); k != 1 {
		t.Errorf("chooseK(0) = %d, want 1", k)
	}
	// ε = 1: Σw ≤ |P| always holds here, all pivots fit.
	if k := chooseK(g, m, 1); k != 6 {
		t.Errorf("chooseK(1) = %d, want 6", k)
	}
}

// TestChooseKDisjointComponents: pivots in disjoint neighborhoods incur
// no waste, so even ε = 0 batches them together.
func TestChooseKDisjointComponents(t *testing.T) {
	machine := cluster.Scores{
		record.MakePair(0, 1): 0.9,
		record.MakePair(2, 3): 0.9,
		record.MakePair(4, 5): 0.9,
	}
	cands := pruning.FromScores(6, machine, 0.3)
	g := buildGraph(cands)
	m := PermutationOf([]record.ID{0, 2, 4, 1, 3, 5})
	if k := chooseK(g, m, 0); k != 6 {
		t.Errorf("chooseK(0) on disjoint stars = %d, want 6", k)
	}
}

// TestPCPivotStatsConsistency: the generation stats must agree with the
// session accounting across random instances.
func TestPCPivotStatsConsistency(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := newRand(seed)
		cands, scores := randomInstance(rng)
		s := session(scores)
		m := NewPermutation(cands.N, rng)
		_, stats := PCPivotPerm(cands, s, 0.2, m)
		if stats.Issued != s.Stats().Pairs {
			t.Fatalf("seed %d: stats.Issued %d != session pairs %d",
				seed, stats.Issued, s.Stats().Pairs)
		}
		if s.Stats().Iterations > stats.Batches {
			t.Fatalf("seed %d: %d crowd iterations from %d batches",
				seed, s.Stats().Iterations, stats.Batches)
		}
	}
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
