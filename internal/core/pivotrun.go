package core

import (
	"math"

	"acd/internal/crowd"
	"acd/internal/graph"
	"acd/internal/record"
)

// pivotRun is the reusable data-plane state of one PC-Pivot run. The
// original implementation paid, on every round, an O(N) permutation
// rescan in lowestRanked, fresh map allocations in WastedBounds and
// chooseKBounds, and a pair-dedup map plus positive-adjacency map in
// PartialPivot. pivotRun replaces all of that with:
//
//   - a persistent permutation cursor: once a rank has been clustered it
//     can never come back, so each round resumes the scan where the
//     previous batch's last pivot left off instead of from rank 0;
//   - epoch-stamped scratch arrays: pivot membership, coverage marks and
//     within-batch removal are O(1) stamp comparisons against the round
//     counter, so "clearing" them between rounds is a single increment;
//   - a fused selection pass (scan) that computes the pivots, their
//     Equation-3 wasted bounds w_j, and the Equation-4 budget in one
//     walk, stopping at the first violation rather than bounding every
//     live vertex.
//
// The outputs are byte-identical to the original formulation; the golden
// determinism tests pin that equivalence.
type pivotRun struct {
	g      *graph.Graph
	m      Permutation
	cursor int // all permutation ranks below this are clustered

	epoch     int32
	pivotSeen []int32 // stamp: v is a pivot of the current round
	pivotIdx  []int32 // v's pivot index, valid when pivotSeen[v] == epoch
	covSeen   []int32 // stamp: v is adjacent to an earlier pivot
	batchSeen []int32 // stamp: v was clustered within the current batch

	lastPivotAt int // permutation index of the last accepted pivot

	pivots   []record.ID   // scratch: the current round's pivots
	pairs    []record.Pair // scratch: the current round's issued batch
	posLists [][]record.ID // scratch: per-pivot positive neighbors
}

func newPivotRun(g *graph.Graph, m Permutation) *pivotRun {
	n := g.Len()
	return &pivotRun{
		g:         g,
		m:         m,
		pivotSeen: make([]int32, n),
		pivotIdx:  make([]int32, n),
		covSeen:   make([]int32, n),
		batchSeen: make([]int32, n),
	}
}

// scan runs the fused pivot-selection pass over the live graph in
// permutation order, starting at the persistent cursor: it accumulates
// pivots with their Equation-3 wasted bounds w_j and both sides of the
// Equation-4 constraint Σw_j ≤ ε·|P_k|, stopping at the first violation
// (or after maxK pivots). A negative eps disables the constraint — the
// mode the WastedBounds compatibility wrapper uses. If w is non-nil,
// each accepted pivot's w_j is appended to it.
//
// It returns the chosen k with the accepted Σw_j and |P_k| — exactly
// chooseKBounds' contract. The pivots and their index stamps remain in
// the scratch arrays for partialPivot to consume within the same epoch.
func (pr *pivotRun) scan(eps float64, maxK int, w *[]int) (k, sumWAtK, pkAtK int) {
	pr.epoch++
	pr.pivots = pr.pivots[:0]
	g, m := pr.g, pr.m
	sumW, edgeCount := 0, 0
	k = 1
	j := int32(0)
	for i := pr.cursor; i < m.Len() && int(j) < maxK; i++ {
		p := m.At(i)
		if !g.Live(p) {
			continue
		}
		nbrs := g.Neighbors(p)
		// w_j (Equation 3): if p is adjacent to an earlier pivot, every
		// edge except those to earlier pivots may be wasted; otherwise
		// only edges to vertices already covered by an earlier pivot.
		// |P_j| grows by the edges not already incident to an earlier
		// pivot. One walk computes both.
		adjEarlier := false
		for _, nb := range nbrs {
			if pr.pivotSeen[nb] == pr.epoch {
				adjEarlier = true
				break
			}
		}
		wj, newEdges := 0, 0
		for _, nb := range nbrs {
			if pr.pivotSeen[nb] == pr.epoch {
				continue // earlier pivot: neither wasted nor newly issued
			}
			newEdges++
			if adjEarlier || pr.covSeen[nb] == pr.epoch {
				wj++
			}
		}
		edgeCount += newEdges
		sumW += wj
		if eps >= 0 && float64(sumW) > eps*float64(edgeCount) {
			break // first Equation-4 violation: k is final
		}
		// Accept p as pivot j.
		pr.pivots = append(pr.pivots, p)
		pr.pivotSeen[p] = pr.epoch
		pr.pivotIdx[p] = j
		for _, nb := range nbrs {
			if pr.covSeen[nb] != pr.epoch {
				pr.covSeen[nb] = pr.epoch
			}
		}
		if w != nil {
			*w = append(*w, wj)
		}
		pr.lastPivotAt = i
		k = int(j) + 1
		sumWAtK, pkAtK = sumW, edgeCount
		j++
	}
	return k, sumWAtK, pkAtK
}

// partialPivot runs Algorithm 2 over the pivots selected by scan in the
// same epoch: it crowdsources every live edge incident to a pivot in one
// batch, forms clusters pivot-by-pivot exactly as the sequential
// Crowd-Pivot would, removes the clustered vertices from the graph, and
// advances the permutation cursor past the last pivot (every lower rank
// is now clustered for good).
func (pr *pivotRun) partialPivot(s *crowd.Session) BatchResult {
	g := pr.g
	pivots := pr.pivots

	// Gather P in pivot order, each pivot's neighbors ascending. An edge
	// between two pivots is deduplicated by emitting it only at the
	// earlier pivot's turn — the only way a duplicate can arise.
	pr.pairs = pr.pairs[:0]
	for _, p := range pivots {
		pi := pr.pivotIdx[p]
		for _, nb := range g.Neighbors(p) {
			if pr.pivotSeen[nb] == pr.epoch && pr.pivotIdx[nb] < pi {
				continue
			}
			pr.pairs = append(pr.pairs, record.MakePair(p, nb))
		}
	}

	// Crowdsource P in one batch and build H_i, the positive subgraph,
	// as per-pivot adjacency lists in issued-pair order. A batch that
	// fails (cancelled campaign) clusters nothing and removes nothing:
	// the zero scores the session returns are not answers, and the
	// caller observes the session error and stops.
	scores := s.Ask(pr.pairs)
	if s.Err() != nil {
		return BatchResult{}
	}
	for len(pr.posLists) < len(pivots) {
		pr.posLists = append(pr.posLists, nil)
	}
	for j := range pivots {
		pr.posLists[j] = pr.posLists[j][:0]
	}
	for i, pair := range pr.pairs {
		if scores[i] <= 0.5 {
			continue
		}
		if pr.pivotSeen[pair.Lo] == pr.epoch {
			j := pr.pivotIdx[pair.Lo]
			pr.posLists[j] = append(pr.posLists[j], pair.Hi)
		}
		if pr.pivotSeen[pair.Hi] == pr.epoch {
			j := pr.pivotIdx[pair.Hi]
			pr.posLists[j] = append(pr.posLists[j], pair.Lo)
		}
	}

	// Form clusters pivot-by-pivot, tracking which pairs the sequential
	// algorithm would have issued so the batch's wasted count is exact:
	// when pivot r_j is still unclustered, sequential Crowd-Pivot issues
	// r_j's edges to all still-live vertices. (Each pivot-pivot edge is
	// counted at most once: a pivot is removed at its own turn with its
	// cluster, so a later pivot never re-counts it.)
	res := BatchResult{Issued: len(pr.pairs)}
	seqIssued := 0
	for j, pivot := range pivots {
		if pr.batchSeen[pivot] == pr.epoch {
			continue
		}
		for _, nb := range g.Neighbors(pivot) {
			if pr.batchSeen[nb] != pr.epoch {
				seqIssued++
			}
		}
		members := []record.ID{pivot}
		for _, nb := range pr.posLists[j] {
			if pr.batchSeen[nb] != pr.epoch {
				members = append(members, nb)
			}
		}
		for _, r := range members {
			pr.batchSeen[r] = pr.epoch
		}
		res.Clusters = append(res.Clusters, members)
	}
	res.Wasted = res.Issued - seqIssued

	for _, members := range res.Clusters {
		for _, r := range members {
			g.Remove(r)
		}
	}
	if len(pivots) > 0 {
		pr.cursor = pr.lastPivotAt + 1
	}
	return res
}

// noEpsilon disables the Equation-4 constraint in scan.
const noEpsilon = -1

// maxPivots lifts scan's batch-size cap.
const maxPivots = math.MaxInt
