package core_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"

	"acd/internal/core"
	"acd/internal/crowd"
	"acd/internal/obs"
)

// TestMetricsMatchOracleInvocations is the accounting invariant of the
// observability layer: on a session-driven run, the number of questions
// the session reports answering must equal the number of times the
// answer oracle was actually consulted, and both must equal the
// Stats.Pairs the algorithm reports. A mismatch means some component
// reached the crowd without going through the session (double-charging
// or free answers).
func TestMetricsMatchOracleInvocations(t *testing.T) {
	_, cands, answers := smallInstance(t)
	rec := obs.New()
	out := core.ACD(cands, answers, core.Config{Seed: 7, Obs: rec})

	snap := rec.Snapshot()
	answered := snap.Counters[crowd.MetricQuestionsAnswered]
	oracle := snap.Counters[crowd.MetricOracleInvocations]
	issued := snap.Counters[crowd.MetricQuestionsIssued]
	cached := snap.Counters[crowd.MetricQuestionsCached]

	if answered != oracle {
		t.Errorf("questions_answered = %d but oracle_invocations = %d", answered, oracle)
	}
	if answered != int64(out.Stats.Pairs) {
		t.Errorf("questions_answered = %d but Stats.Pairs = %d", answered, out.Stats.Pairs)
	}
	if issued != answered+cached {
		t.Errorf("issued = %d != answered %d + cached %d", issued, answered, cached)
	}
	if got := snap.Counters[crowd.MetricIterations]; got != int64(out.Stats.Iterations) {
		t.Errorf("iterations counter = %d but Stats.Iterations = %d", got, out.Stats.Iterations)
	}
	if got := snap.Counters[crowd.MetricHITs]; got != int64(out.Stats.HITs) {
		t.Errorf("hits counter = %d but Stats.HITs = %d", got, out.Stats.HITs)
	}
}

// TestRecorderDoesNotChangeResult pins the zero-interference guarantee:
// the exact same run with and without a recorder (and with tracing on)
// produces the identical clustering and crowd accounting.
func TestRecorderDoesNotChangeResult(t *testing.T) {
	_, cands, answers := smallInstance(t)
	plain := core.ACD(cands, answers, core.Config{Seed: 7})

	_, cands2, answers2 := smallInstance(t)
	rec := obs.New()
	rec.SetTrace(&bytes.Buffer{})
	observed := core.ACD(cands2, answers2, core.Config{Seed: 7, Obs: rec})

	if plain.Stats != observed.Stats {
		t.Errorf("stats diverged: plain %+v, observed %+v", plain.Stats, observed.Stats)
	}
	if a, b := plain.Clusters.Sets(), observed.Clusters.Sets(); len(a) != len(b) {
		t.Errorf("cluster count diverged: %d vs %d", len(a), len(b))
	} else if plain.Clusters.NumClusters() != observed.Clusters.NumClusters() {
		t.Errorf("NumClusters diverged")
	}
}

// pivotRound is the traced payload of one PC-Pivot round.
type pivotRound struct {
	Round   int     `json:"round"`
	K       int     `json:"k"`
	SumW    int     `json:"sum_w"`
	PK      int     `json:"p_k"`
	Epsilon float64 `json:"epsilon"`
	Issued  int     `json:"issued"`
	Wasted  int     `json:"wasted"`
}

// TestLemma3WastedPairBound checks the paper's batching guarantees on
// every round of a real run, via the trace stream: the actual wasted
// pairs never exceed the worst-case bound Σ_{j≤k} w_j (Lemma 3), and the
// bound itself respects the budget Σ w_j ≤ ε·|P_k| that chooseK enforces
// (Equation 4). In aggregate this yields Lemma 4's Wasted ≤ ε·Issued
// over the worst-case issue count.
func TestLemma3WastedPairBound(t *testing.T) {
	_, cands, answers := smallInstance(t)
	rec := obs.New()
	var trace bytes.Buffer
	rec.SetTrace(&trace)
	core.ACD(cands, answers, core.Config{Seed: 7, Obs: rec})

	rounds := 0
	sc := bufio.NewScanner(&trace)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev struct {
			Name string `json:"event"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad trace line %q: %v", sc.Text(), err)
		}
		if ev.Name != "pivot.round" {
			continue
		}
		var pr struct {
			Fields pivotRound `json:"fields"`
		}
		if err := json.Unmarshal(sc.Bytes(), &pr); err != nil {
			t.Fatal(err)
		}
		r := pr.Fields
		rounds++
		if r.Wasted > r.SumW {
			t.Errorf("round %d: wasted %d exceeds Lemma 3 bound Σw_j = %d", r.Round, r.Wasted, r.SumW)
		}
		// k = 1 is forced progress (w_1 = 0), so the budget always holds.
		if float64(r.SumW) > r.Epsilon*float64(r.PK) {
			t.Errorf("round %d: Σw_j = %d exceeds ε·|P_k| = %v·%d", r.Round, r.SumW, r.Epsilon, r.PK)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if rounds == 0 {
		t.Fatal("no pivot.round events traced")
	}

	snap := rec.Snapshot()
	wasted := snap.Counters[core.MetricPairsWasted]
	predicted := snap.Counters[core.MetricPredictedWasted]
	budget := snap.Counters[core.MetricBudgetPairs]
	eps := snap.Gauges[core.MetricEpsilon]
	if wasted > predicted {
		t.Errorf("aggregate wasted %d exceeds predicted %d", wasted, predicted)
	}
	if float64(predicted) > eps*float64(budget) {
		t.Errorf("aggregate predicted %d exceeds ε·budget = %v·%d", predicted, eps, budget)
	}
	if got := snap.Counters[core.MetricRounds]; got != int64(rounds) {
		t.Errorf("rounds counter %d but %d pivot.round events", got, rounds)
	}
}
