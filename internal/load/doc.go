// Package load is the YCSB-style workload generator for the serving
// layer: it drives a live acdserve over HTTP with a configurable mix of
// POST /records, POST /answers, GET /clusters and GET /metrics (plus an
// optional background POST /resolve cadence), under an open-loop
// Poisson, bursty, or closed-loop arrival process on a seedable RNG,
// with record churn drawn from internal/dataset. Latencies land in
// race-safe HDR-style histograms (internal/histogram.Latency) split by
// endpoint; after a warmup phase the measured window is summarized as a
// Report (throughput + p50/p90/p99/p999) that converts to the shared
// internal/benchfmt schema, so serving-layer numbers extend the
// committed BENCH_N.json trajectory. The orchestrated scenario suite
// lives in the scenarios subpackage; the CLI is cmd/acdload; the
// methodology handbook is docs/serving.md.
//
// The generator measures a *server*, so unlike the pipeline packages it
// is wall-clock driven and its measurements are not reproducible — only
// the request sequence (arrival draws, op picks, record churn, answer
// pairs) is deterministic for a given seed.
package load
