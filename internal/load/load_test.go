package load

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"acd/internal/benchfmt"
	"acd/internal/dataset"
	"acd/internal/serve"
)

// TestConfigValidation: the generator rejects malformed configs and
// resolves defaults on valid ones.
func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},                                      // no target
		{Target: "http://x"},                    // no duration
		{Target: "http://x", Duration: time.Second, Mix: Mix{Records: -1, Clusters: 2}},
		{Target: "http://x", Duration: time.Second, Arrival: "weird"},
		{Target: "http://x", Duration: time.Second, Concurrency: -2},
		{Target: "http://x", Duration: time.Second}, // default mix needs a pool
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	g, err := New(Config{Target: "http://x", Duration: time.Second, Mix: Mix{Clusters: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if g.cfg.Concurrency != 16 || g.cfg.Arrival != ArrivalClosed || g.cfg.RecordBatch != 8 {
		t.Errorf("defaults not applied: %+v", g.cfg)
	}
}

// concurrencyServer counts concurrent in-flight requests.
type concurrencyServer struct {
	cur, peak atomic.Int64
}

func (s *concurrencyServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c := s.cur.Add(1)
	defer s.cur.Add(-1)
	for {
		p := s.peak.Load()
		if c <= p || s.peak.CompareAndSwap(p, c) {
			break
		}
	}
	time.Sleep(2 * time.Millisecond)
	w.Header().Set("Content-Type", "application/json")
	w.Write([]byte("{}")) //nolint:errcheck — test handler
}

// TestClosedLoopConcurrencyInvariant: a closed loop with C workers
// never has more than C operations in flight, and keeps the server
// saturated near C.
func TestClosedLoopConcurrencyInvariant(t *testing.T) {
	cs := &concurrencyServer{}
	ts := httptest.NewServer(cs)
	defer ts.Close()
	g, err := New(Config{
		Target:      ts.URL,
		Mix:         Mix{Clusters: 1},
		Concurrency: 8,
		Duration:    300 * time.Millisecond,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := g.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if p := cs.peak.Load(); p > 8 {
		t.Errorf("server saw %d concurrent requests from an 8-worker closed loop", p)
	}
	if p := rep.Counters.MaxInFlight; p > 8 {
		t.Errorf("generator recorded %d in flight, want ≤ 8", p)
	}
	if p := cs.peak.Load(); p < 4 {
		t.Errorf("closed loop only reached %d concurrent requests; workers not parallel", p)
	}
	if rep.Endpoints[EndpointClusters].Ops == 0 {
		t.Error("no measured clusters ops")
	}
}

// TestOpenLoopConcurrencyCap: the open-loop semaphore bounds in-flight
// operations at Concurrency even when the offered rate exceeds server
// capacity.
func TestOpenLoopConcurrencyCap(t *testing.T) {
	cs := &concurrencyServer{}
	ts := httptest.NewServer(cs)
	defer ts.Close()
	g, err := New(Config{
		Target:      ts.URL,
		Mix:         Mix{Metrics: 1},
		Arrival:     ArrivalPoisson,
		Rate:        5000, // far beyond a 2ms-latency server's capacity at C=4
		Concurrency: 4,
		Duration:    250 * time.Millisecond,
		Seed:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := g.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if p := cs.peak.Load(); p > 4 {
		t.Errorf("server saw %d concurrent requests, cap is 4", p)
	}
	if rep.Endpoints[EndpointMetrics].Ops == 0 {
		t.Error("no measured metrics ops")
	}
}

// TestGeneratorLoopback drives a real in-process acdserve with the full
// default mix and checks the report holds together: no errors, acked
// floors advanced, answers flowed once records existed.
func TestGeneratorLoopback(t *testing.T) {
	l, err := serve.StartLocal(serve.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	pool, err := SyntheticPool(dataset.SyntheticConfig{Entities: 20, Records: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(pool) != 100 {
		t.Fatalf("pool size %d, want 100", len(pool))
	}
	g, err := New(Config{
		Target:       l.URL,
		Pool:         pool,
		Concurrency:  4,
		Warmup:       50 * time.Millisecond,
		Duration:     400 * time.Millisecond,
		ResolveEvery: 100 * time.Millisecond,
		Seed:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := g.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rep.Scenario = "loopback"
	if rep.TotalErrors() != 0 {
		t.Fatalf("measured %d errors: %+v", rep.TotalErrors(), rep.Endpoints)
	}
	c := rep.Counters
	// Requests in flight at shutdown are canceled after being counted
	// as issued, so acked can trail issued — but never exceed it.
	if c.AckedRecords == 0 || c.AckedRecords > c.IssuedRecords {
		t.Errorf("records acked %d / issued %d, want 0 < acked ≤ issued", c.AckedRecords, c.IssuedRecords)
	}
	if c.AckedAnswers == 0 {
		t.Error("no answers acked over a 400ms default-mix run")
	}
	if c.Known < 2 {
		t.Errorf("known high-water %d, want ≥ 2", c.Known)
	}
	if rep.WarmupOps == 0 {
		t.Error("warmup window recorded no ops")
	}
	for _, ep := range []string{EndpointRecords, EndpointClusters, EndpointResolve} {
		if rep.Endpoints[ep].Ops == 0 {
			t.Errorf("endpoint %s measured no ops", ep)
		}
		if st := rep.Endpoints[ep]; st.Ops > 0 && (st.Throughput <= 0 || st.P50 < 0 || st.P99 < st.P50) {
			t.Errorf("endpoint %s stats incoherent: %+v", ep, st)
		}
	}
	var sb strings.Builder
	rep.Render(&sb)
	if !strings.Contains(sb.String(), "records") || !strings.Contains(sb.String(), "p99ms") {
		t.Errorf("render missing expected columns:\n%s", sb.String())
	}
}

// TestSuiteRoundTrip: suite files survive write/read and fold into the
// shared benchmark document under per-report labels.
func TestSuiteRoundTrip(t *testing.T) {
	rep := &Report{
		Scenario: "baseline",
		Shards:   2,
		Measured: time.Second,
		Endpoints: map[string]EndpointStats{
			EndpointRecords:  {Ops: 100, Throughput: 100, P50: 1.5, P99: 4.5, Mean: 2},
			EndpointClusters: {Ops: 50, Throughput: 50, P50: 0.2, P99: 0.9, Mean: 0.3},
		},
		Counters: Counters{AckedRecords: 800, IssuedRecords: 800},
	}
	if got := rep.Label(); got != "baseline-2shard" {
		t.Errorf("Label = %q, want baseline-2shard", got)
	}
	path := t.TempDir() + "/suite.json"
	if err := WriteSuite(path, &Suite{Reports: []*Report{rep}}); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSuite(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Reports) != 1 {
		t.Fatalf("round-trip lost reports: %d", len(back.Reports))
	}
	r2 := back.Reports[0]
	if r2.Scenario != rep.Scenario || r2.Shards != rep.Shards || r2.Counters != rep.Counters {
		t.Errorf("round-trip mutated report: %+v", r2)
	}
	if r2.Endpoints[EndpointRecords] != rep.Endpoints[EndpointRecords] {
		t.Errorf("round-trip mutated endpoint stats: %+v", r2.Endpoints[EndpointRecords])
	}

	doc := &benchfmt.Document{}
	back.MergeInto(doc)
	results := doc.Labels["baseline-2shard"]
	if len(results) != 2 {
		t.Fatalf("merged %d results, want 2", len(results))
	}
	if results[0].Name != "Load/baseline/records" {
		t.Errorf("result name %q, want Load/baseline/records", results[0].Name)
	}
	if results[0].Metrics["ops/s"] != 100 || results[0].Metrics["p99_ms"] != 4.5 {
		t.Errorf("metrics not carried over: %+v", results[0].Metrics)
	}
}
