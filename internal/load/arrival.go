package load

import (
	"fmt"
	"math/rand"
	"time"
)

// ArrivalKind selects how operations are scheduled against the server.
type ArrivalKind string

const (
	// ArrivalClosed is the closed-loop process: Concurrency workers
	// each issue the next operation the moment the previous response
	// lands. Offered load adapts to server speed (no queue forms), so
	// closed loops measure capacity, not queueing behavior.
	ArrivalClosed ArrivalKind = "closed"
	// ArrivalPoisson is the open-loop process: operations are released
	// on a Poisson schedule at Rate ops/sec regardless of how fast
	// responses return, the way independent users arrive. An optional
	// Burst overlays a square-wave rate modulation.
	ArrivalPoisson ArrivalKind = "poisson"
)

// Burst is a square-wave modulation of the open-loop rate: for the
// first Duty fraction of every Period the schedule runs at Rate, the
// rest of the period at the base rate. It models flash crowds and
// ingest spikes.
type Burst struct {
	// Rate is the burst-window arrival rate in ops/sec.
	Rate float64
	// Period is the full cycle length.
	Period time.Duration
	// Duty is the fraction of each period spent at the burst rate
	// (0 < Duty < 1).
	Duty float64
}

// Schedule generates the interarrival delays of an open-loop arrival
// process. Draws are deterministic for a seed: the schedule is pure
// arithmetic over a seeded RNG and its own accumulated virtual time, so
// two runs with the same seed release operations at the same offsets.
// Not safe for concurrent use; the dispatcher owns it.
type Schedule struct {
	rng     *rand.Rand
	base    float64
	burst   *Burst
	elapsed time.Duration
}

// NewSchedule builds a Poisson schedule at rate ops/sec, optionally
// modulated by burst (nil = constant rate).
func NewSchedule(seed int64, rate float64, burst *Burst) (*Schedule, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("load: open-loop rate must be positive, got %v", rate)
	}
	if burst != nil {
		if burst.Rate <= 0 || burst.Period <= 0 || burst.Duty <= 0 || burst.Duty >= 1 {
			return nil, fmt.Errorf("load: burst needs Rate > 0, Period > 0, 0 < Duty < 1, got %+v", *burst)
		}
	}
	return &Schedule{rng: rand.New(rand.NewSource(seed)), base: rate, burst: burst}, nil
}

// rateAt returns the arrival rate in effect at virtual offset t.
func (s *Schedule) rateAt(t time.Duration) float64 {
	if s.burst == nil {
		return s.base
	}
	phase := t % s.burst.Period
	if float64(phase) < s.burst.Duty*float64(s.burst.Period) {
		return s.burst.Rate
	}
	return s.base
}

// Next returns the delay before the next operation: an exponential
// interarrival draw at the rate in effect at the schedule's current
// virtual offset.
func (s *Schedule) Next() time.Duration {
	r := s.rateAt(s.elapsed)
	d := time.Duration(s.rng.ExpFloat64() / r * float64(time.Second))
	s.elapsed += d
	return d
}

// Elapsed returns the schedule's accumulated virtual time — the offset
// at which the most recently drawn operation is released.
func (s *Schedule) Elapsed() time.Duration { return s.elapsed }
