package load

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"acd/internal/histogram"
)

// Endpoint labels used as report keys. "resolve" only appears when a
// background resolve cadence is configured.
const (
	EndpointRecords  = "records"
	EndpointAnswers  = "answers"
	EndpointClusters = "clusters"
	EndpointMetrics  = "metrics"
	EndpointResolve  = "resolve"
)

// Mix is the operation mix as integer weights (they need not sum to
// 100). An operation is drawn per request in proportion to its weight.
type Mix struct {
	// Records weights POST /records (a batch of RecordBatch records).
	Records int
	// Answers weights POST /answers (a batch of AnswerBatch answers to
	// random known pairs). Until two records are acked, answer draws
	// fall back to records operations — there is nothing to answer.
	Answers int
	// Clusters weights GET /clusters (snapshot read).
	Clusters int
	// Metrics weights GET /metrics (observability read).
	Metrics int
}

// total returns the sum of weights.
func (m Mix) total() int { return m.Records + m.Answers + m.Clusters + m.Metrics }

// Config parameterizes one load run against a live server.
type Config struct {
	// Target is the server's base URL ("http://127.0.0.1:8080").
	// Writes (records, answers, resolve) always go here.
	Target string
	// ReadTargets optionally routes the snapshot reads (GET /clusters,
	// GET /metrics) round-robin across these base URLs instead of
	// Target — the replica topology, where writes go to the leader and
	// stale-ok reads fan out over followers. Empty reads from Target.
	ReadTargets []string
	// Client issues the requests; nil builds one with a connection
	// pool sized for Concurrency.
	Client *http.Client
	// Mix is the operation mix (zero value = 60/20/15/5).
	Mix Mix
	// Arrival selects closed-loop or open-loop Poisson scheduling
	// (empty = closed).
	Arrival ArrivalKind
	// Rate is the open-loop arrival rate in ops/sec (ignored closed).
	Rate float64
	// Burst optionally modulates the open-loop rate.
	Burst *Burst
	// Concurrency is the worker count closed-loop, and the maximum
	// in-flight operations open-loop (default 16).
	Concurrency int
	// Warmup runs the workload without recording (default 0); Duration
	// is the measured window (required).
	Warmup   time.Duration
	Duration time.Duration
	// RecordBatch and AnswerBatch size the POST bodies (defaults 8/4).
	RecordBatch int
	AnswerBatch int
	// ResolveEvery runs POST /resolve on a background cadence (0 =
	// never) and reports it as its own endpoint.
	ResolveEvery time.Duration
	// Pool is the record churn: consecutive records operations walk it
	// round-robin. Required when Mix.Records > 0 (SyntheticPool builds
	// one from internal/dataset).
	Pool []Payload
	// Seed drives arrival draws, op picks, churn order, and answer
	// pairs — the full request sequence.
	Seed int64
	// TrackPairs makes the generator remember every distinct answer
	// pair it has fully acked, so Counters.DistinctPairs is an exact
	// lower bound on the server's durable answer cache. The
	// crash-restart scenario needs it; it costs a map insert per
	// answer, so it is off by default.
	TrackPairs bool
}

// withDefaults validates and resolves the zero values.
func (c Config) withDefaults() (Config, error) {
	if c.Target == "" {
		return c, fmt.Errorf("load: Target required")
	}
	if c.Duration <= 0 {
		return c, fmt.Errorf("load: Duration must be positive")
	}
	if c.Mix.total() == 0 {
		c.Mix = Mix{Records: 60, Answers: 20, Clusters: 15, Metrics: 5}
	}
	if c.Mix.Records < 0 || c.Mix.Answers < 0 || c.Mix.Clusters < 0 || c.Mix.Metrics < 0 {
		return c, fmt.Errorf("load: negative mix weight: %+v", c.Mix)
	}
	if c.Arrival == "" {
		c.Arrival = ArrivalClosed
	}
	if c.Arrival != ArrivalClosed && c.Arrival != ArrivalPoisson {
		return c, fmt.Errorf("load: unknown arrival process %q", c.Arrival)
	}
	if c.Concurrency == 0 {
		c.Concurrency = 16
	}
	if c.Concurrency < 0 {
		return c, fmt.Errorf("load: negative concurrency")
	}
	if c.RecordBatch <= 0 {
		c.RecordBatch = 8
	}
	if c.AnswerBatch <= 0 {
		c.AnswerBatch = 4
	}
	if (c.Mix.Records > 0 || c.Mix.Answers > 0) && len(c.Pool) == 0 {
		return c, fmt.Errorf("load: record/answer operations need a churn Pool")
	}
	if c.Client == nil {
		c.Client = &http.Client{
			Timeout: 60 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        c.Concurrency * 2,
				MaxIdleConnsPerHost: c.Concurrency * 2,
			},
		}
	}
	return c, nil
}

// Payload is one record as POSTed to /records.
type Payload struct {
	// Fields are the record's named attribute values.
	Fields map[string]string `json:"fields"`
	// Entity is the optional ground-truth label.
	Entity string `json:"entity,omitempty"`
}

// Counters is a live progress snapshot, readable while Run is in
// flight (the crash-restart scenario reads it at the instant it copies
// the journal, to know the acked floor a recovery must preserve).
type Counters struct {
	// IssuedRecords / AckedRecords count records sent and acked (an
	// ack is the server's 200 with assigned ids, which follows the WAL
	// fsync). Issued counts are recorded before the request is sent.
	IssuedRecords int64
	AckedRecords  int64
	// IssuedAnswers / AckedAnswers are the same for answers.
	IssuedAnswers int64
	AckedAnswers  int64
	// Known is the generator's record-count high-water mark (max acked
	// id + 1).
	Known int64
	// MaxInFlight is the peak concurrent operations observed.
	MaxInFlight int64
	// DistinctPairs counts distinct fully-acked answer pairs (only
	// maintained when Config.TrackPairs is set). The server's answer
	// cache keys by pair, so after recovery it must hold at least this
	// many answers.
	DistinctPairs int64
}

// opKind enumerates the drawable operations.
type opKind int

const (
	opRecords opKind = iota
	opAnswers
	opClusters
	opMetrics
)

// name returns the endpoint label of an op.
func (o opKind) name() string {
	switch o {
	case opRecords:
		return EndpointRecords
	case opAnswers:
		return EndpointAnswers
	case opClusters:
		return EndpointClusters
	default:
		return EndpointMetrics
	}
}

// opSpec is one fully-drawn operation: the kind plus every random
// parameter it needs, pre-drawn so execution itself never touches a
// shared RNG.
type opSpec struct {
	kind  opKind
	pairs []answerSpec // opAnswers
}

// answerSpec is one pre-drawn answer: the uniform draws that become a
// concrete (lo, hi, fc) once the known record count is fixed at
// execution time.
type answerSpec struct {
	u1, u2, fc float64
}

// epStats accumulates one endpoint's measured window.
type epStats struct {
	hist *histogram.Latency
	ops  atomic.Int64
	errs atomic.Int64
}

// Generator drives one configured workload. Create with New, run once
// with Run.
type Generator struct {
	cfg Config

	measuring atomic.Bool
	stats     map[string]*epStats // fixed key set after New; values are atomic

	cursor     atomic.Int64 // churn pool position
	readCursor atomic.Int64 // ReadTargets round-robin position
	known    atomic.Int64 // contiguous acked-record prefix (see ackIDs)
	ackMu    sync.Mutex
	ackedIDs map[int64]struct{} // acked ids at or beyond the known prefix
	inflight atomic.Int64
	maxInflight atomic.Int64
	warmupOps   atomic.Int64

	issuedRecords atomic.Int64
	ackedRecords  atomic.Int64
	issuedAnswers atomic.Int64
	ackedAnswers  atomic.Int64

	pairs         sync.Map // pairKey → struct{}, when TrackPairs
	distinctPairs atomic.Int64
}

// pairKey identifies one answer pair in the TrackPairs map.
type pairKey struct{ lo, hi int64 }

// New validates cfg and builds a generator.
func New(cfg Config) (*Generator, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	g := &Generator{cfg: cfg, stats: map[string]*epStats{}, ackedIDs: map[int64]struct{}{}}
	for _, ep := range []string{EndpointRecords, EndpointAnswers, EndpointClusters, EndpointMetrics, EndpointResolve} {
		g.stats[ep] = &epStats{hist: histogram.NewLatency()}
	}
	return g, nil
}

// Counters returns a live progress snapshot.
func (g *Generator) Counters() Counters {
	return Counters{
		IssuedRecords: g.issuedRecords.Load(),
		AckedRecords:  g.ackedRecords.Load(),
		IssuedAnswers: g.issuedAnswers.Load(),
		AckedAnswers:  g.ackedAnswers.Load(),
		Known:         g.known.Load(),
		MaxInFlight:   g.maxInflight.Load(),
		DistinctPairs: g.distinctPairs.Load(),
	}
}

// draw picks the next operation from rng per the mix weights,
// pre-drawing every random parameter the op will need.
func (g *Generator) draw(rng *rand.Rand) opSpec {
	n := rng.Intn(g.cfg.Mix.total())
	var kind opKind
	switch {
	case n < g.cfg.Mix.Records:
		kind = opRecords
	case n < g.cfg.Mix.Records+g.cfg.Mix.Answers:
		kind = opAnswers
	case n < g.cfg.Mix.Records+g.cfg.Mix.Answers+g.cfg.Mix.Clusters:
		kind = opClusters
	default:
		kind = opMetrics
	}
	spec := opSpec{kind: kind}
	if kind == opAnswers {
		spec.pairs = make([]answerSpec, g.cfg.AnswerBatch)
		for i := range spec.pairs {
			spec.pairs[i] = answerSpec{u1: rng.Float64(), u2: rng.Float64(), fc: rng.Float64()}
		}
	}
	return spec
}

// Run executes the workload: Warmup unrecorded, then Duration measured,
// then returns the report. Cancelling ctx stops the run early; the
// report then covers the measured window up to the cancellation.
func (g *Generator) Run(ctx context.Context) (*Report, error) {
	runCtx, stop := context.WithCancel(ctx)
	defer stop()

	var wg sync.WaitGroup
	if g.cfg.ResolveEvery > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.resolveLoop(runCtx)
		}()
	}
	switch g.cfg.Arrival {
	case ArrivalClosed:
		for w := 0; w < g.cfg.Concurrency; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(g.cfg.Seed + int64(w)*1_000_003))
				for runCtx.Err() == nil {
					g.execute(runCtx, g.draw(rng))
				}
			}(w)
		}
	case ArrivalPoisson:
		sched, err := NewSchedule(g.cfg.Seed, g.cfg.Rate, g.cfg.Burst)
		if err != nil {
			stop()
			wg.Wait()
			return nil, err
		}
		rng := rand.New(rand.NewSource(g.cfg.Seed + 7_777_777))
		sem := make(chan struct{}, g.cfg.Concurrency)
		wg.Add(1)
		go func() {
			defer wg.Done()
			timer := time.NewTimer(0)
			defer timer.Stop()
			<-timer.C
			for {
				timer.Reset(sched.Next())
				select {
				case <-runCtx.Done():
					return
				case <-timer.C:
				}
				spec := g.draw(rng)
				// Block for a slot: the schedule slips when the server
				// cannot absorb the offered rate (recorded latencies
				// then under-report queueing — coordinated omission —
				// which docs/serving.md tells readers how to interpret).
				select {
				case <-runCtx.Done():
					return
				case sem <- struct{}{}:
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer func() { <-sem }()
					g.execute(runCtx, spec)
				}()
			}
		}()
	}

	warmupEnd := time.After(g.cfg.Warmup)
	if g.cfg.Warmup == 0 {
		warmupEnd = nil
		g.measuring.Store(true)
	}
	measureStart := time.Now()
	if warmupEnd != nil {
		select {
		case <-ctx.Done():
			stop()
			wg.Wait()
			return nil, ctx.Err()
		case <-warmupEnd:
			g.measuring.Store(true)
			measureStart = time.Now()
		}
	}
	select {
	case <-ctx.Done():
	case <-time.After(g.cfg.Duration):
	}
	measured := time.Since(measureStart)
	stop()
	wg.Wait()
	return g.report(measured), nil
}

// resolveLoop POSTs /resolve on the configured cadence until ctx ends.
func (g *Generator) resolveLoop(ctx context.Context) {
	tick := time.NewTicker(g.cfg.ResolveEvery)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			t0 := time.Now()
			err := g.post(ctx, "/resolve", nil, nil)
			if ctx.Err() != nil && err != nil {
				return // shutdown race, not a server error
			}
			g.record(EndpointResolve, time.Since(t0), err)
		}
	}
}

// execute issues one drawn operation and records its latency.
func (g *Generator) execute(ctx context.Context, spec opSpec) {
	in := g.inflight.Add(1)
	for {
		cur := g.maxInflight.Load()
		if in <= cur || g.maxInflight.CompareAndSwap(cur, in) {
			break
		}
	}
	defer g.inflight.Add(-1)

	// An answers draw before two records are acked has nothing legal to
	// say; it degrades to a records op (counted as one).
	if spec.kind == opAnswers && g.known.Load() < 2 {
		spec = opSpec{kind: opRecords}
	}

	var err error
	t0 := time.Now()
	switch spec.kind {
	case opRecords:
		err = g.doRecords(ctx)
	case opAnswers:
		err = g.doAnswers(ctx, spec.pairs)
	case opClusters:
		err = g.get(ctx, g.readTarget(), "/clusters")
	case opMetrics:
		err = g.get(ctx, g.readTarget(), "/metrics")
	}
	if ctx.Err() != nil && err != nil {
		return // shutdown race, not a server error
	}
	g.record(spec.kind.name(), time.Since(t0), err)
}

// record books one completed operation into the measured stats (or the
// warmup tally before the measured window opens).
func (g *Generator) record(endpoint string, d time.Duration, err error) {
	if !g.measuring.Load() {
		g.warmupOps.Add(1)
		return
	}
	st := g.stats[endpoint]
	st.ops.Add(1)
	if err != nil {
		st.errs.Add(1)
		return
	}
	st.hist.Observe(d)
}

// doRecords POSTs the next churn batch and advances the known
// high-water mark from the acked ids.
func (g *Generator) doRecords(ctx context.Context) error {
	base := g.cursor.Add(int64(g.cfg.RecordBatch)) - int64(g.cfg.RecordBatch)
	batch := make([]Payload, g.cfg.RecordBatch)
	for i := range batch {
		batch[i] = g.cfg.Pool[(base+int64(i))%int64(len(g.cfg.Pool))]
	}
	g.issuedRecords.Add(int64(len(batch)))
	var resp struct {
		IDs []int64 `json:"ids"`
	}
	err := g.post(ctx, "/records", map[string]any{"records": batch}, &resp)
	if err != nil {
		return err
	}
	g.ackedRecords.Add(int64(len(resp.IDs)))
	g.ackIDs(resp.IDs)
	return nil
}

// ackIDs folds freshly-acked record ids into the known watermark. With
// a sharded server, acks complete out of order (id 184 can ack before
// id 150 whose home shard is busier), so `known` advances only over the
// CONTIGUOUS acked prefix — every id below it is durably applied, which
// is what makes drawing answer pairs from [0, known) always valid.
func (g *Generator) ackIDs(ids []int64) {
	g.ackMu.Lock()
	for _, id := range ids {
		g.ackedIDs[id] = struct{}{}
	}
	k := g.known.Load()
	for {
		if _, ok := g.ackedIDs[k]; !ok {
			break
		}
		delete(g.ackedIDs, k)
		k++
	}
	g.known.Store(k)
	g.ackMu.Unlock()
}

// doAnswers materializes the pre-drawn answer specs against the current
// known record count and POSTs them.
func (g *Generator) doAnswers(ctx context.Context, specs []answerSpec) error {
	known := g.known.Load()
	type answer struct {
		Lo     int64   `json:"lo"`
		Hi     int64   `json:"hi"`
		FC     float64 `json:"fc"`
		Source string  `json:"source"`
	}
	answers := make([]answer, len(specs))
	for i, s := range specs {
		lo := int64(s.u1 * float64(known-1)) // [0, known-1)
		hi := lo + 1 + int64(s.u2*float64(known-lo-1))
		if hi >= known {
			hi = known - 1
		}
		if hi <= lo { // known == 2 edge
			lo, hi = 0, 1
		}
		answers[i] = answer{Lo: lo, Hi: hi, FC: s.fc, Source: "acdload"}
	}
	g.issuedAnswers.Add(int64(len(answers)))
	var resp struct {
		Accepted int64 `json:"accepted"`
	}
	if err := g.post(ctx, "/answers", map[string]any{"answers": answers}, &resp); err != nil {
		return err
	}
	g.ackedAnswers.Add(resp.Accepted)
	// Only a fully-acked batch lets us credit each pair as durable; a
	// journal-failure prefix would need the error body's committed
	// count, which the error path doesn't parse — under-counting is the
	// safe direction for a durability floor.
	if g.cfg.TrackPairs && resp.Accepted == int64(len(answers)) {
		for _, a := range answers {
			if _, loaded := g.pairs.LoadOrStore(pairKey{a.Lo, a.Hi}, struct{}{}); !loaded {
				g.distinctPairs.Add(1)
			}
		}
	}
	return nil
}

// post issues one POST with a JSON body (nil = empty) and decodes the
// response into out (nil = drained and discarded). Non-200 statuses
// are errors.
func (g *Generator) post(ctx context.Context, path string, body any, out any) error {
	var rd io.Reader
	if body != nil {
		enc, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(enc)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, g.cfg.Target+path, rd)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return g.send(req, out)
}

// readTarget picks the base URL for the next snapshot read.
func (g *Generator) readTarget() string {
	if len(g.cfg.ReadTargets) == 0 {
		return g.cfg.Target
	}
	n := g.readCursor.Add(1) - 1
	return g.cfg.ReadTargets[int(n%int64(len(g.cfg.ReadTargets)))]
}

// get issues one GET against base and drains the response.
func (g *Generator) get(ctx context.Context, base, path string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+path, nil)
	if err != nil {
		return err
	}
	return g.send(req, nil)
}

// send executes the request, enforcing a 200 and fully draining the
// body so connections return to the pool.
func (g *Generator) send(req *http.Request, out any) error {
	resp, err := g.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck — drain for connection reuse
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s %s: status %d", req.Method, req.URL.Path, resp.StatusCode)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}
