package scenarios

import (
	"strings"
	"testing"

	"acd/internal/load"
)

// TestRegistry: eleven scenarios, unique names, Find agrees with All.
func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 11 {
		t.Fatalf("len(All()) = %d, want 11", len(all))
	}
	seen := map[string]bool{}
	for _, s := range all {
		if s.Name == "" || s.Desc == "" || s.Run == nil {
			t.Errorf("scenario %+v incomplete", s.Name)
		}
		if seen[s.Name] {
			t.Errorf("duplicate scenario name %q", s.Name)
		}
		seen[s.Name] = true
		got, ok := Find(s.Name)
		if !ok || got.Name != s.Name {
			t.Errorf("Find(%q) failed", s.Name)
		}
	}
	if _, ok := Find("no-such-scenario"); ok {
		t.Error("Find accepted an unknown name")
	}
}

// TestOptionsValidation: a missing Dir and a negative shard count are
// rejected.
func TestOptionsValidation(t *testing.T) {
	if _, err := (Options{}).withDefaults(); err == nil {
		t.Error("empty Dir accepted")
	}
	if _, err := (Options{Dir: "x", Shards: -1}).withDefaults(); err == nil {
		t.Error("negative shards accepted")
	}
	o, err := Options{Dir: "x"}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if o.Shards != 1 || o.Seed != 1 || o.Log == nil {
		t.Errorf("defaults not applied: %+v", o)
	}
}

// checkReport: shared sanity for a smoke report.
func checkReport(t *testing.T, rep *load.Report, name string) {
	t.Helper()
	if rep.Scenario != name {
		t.Errorf("scenario label %q, want %q", rep.Scenario, name)
	}
	if rep.TotalOps() == 0 {
		t.Errorf("%s measured zero ops", name)
	}
	if rep.TotalErrors() != 0 {
		t.Errorf("%s measured %d errors", name, rep.TotalErrors())
	}
}

// TestBaselineSmoke runs the baseline scenario end to end in smoke mode
// against a real journaled in-process server.
func TestBaselineSmoke(t *testing.T) {
	var logb strings.Builder
	rep, err := runBaseline(Options{Dir: t.TempDir(), Smoke: true, Log: &logb})
	if err != nil {
		t.Fatalf("baseline: %v\nlog:\n%s", err, logb.String())
	}
	checkReport(t, rep, "baseline")
	if rep.Counters.AckedRecords == 0 {
		t.Error("baseline acked no records")
	}
}

// TestBurstySmoke exercises the open-loop path with rate bursts.
func TestBurstySmoke(t *testing.T) {
	rep, err := runBursty(Options{Dir: t.TempDir(), Smoke: true})
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, rep, "bursty")
}

// TestDegradedCrowdSmoke exercises the simulated-crowd wiring: resolves
// run against a slow faulty source and still complete.
func TestDegradedCrowdSmoke(t *testing.T) {
	rep, err := runDegradedCrowd(Options{Dir: t.TempDir(), Smoke: true})
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, rep, "degraded-crowd")
	if rep.Endpoints[load.EndpointResolve].Ops == 0 {
		t.Error("degraded-crowd never resolved")
	}
}

// TestMixedFleetSmoke exercises the marketplace wiring end to end:
// resolves buy answers across the default heterogeneous fleet under a
// mid-run price spike, and the router's spend accounting lands in the
// report.
func TestMixedFleetSmoke(t *testing.T) {
	var logb strings.Builder
	rep, err := runMixedFleet(Options{Dir: t.TempDir(), Smoke: true, Log: &logb})
	if err != nil {
		t.Fatalf("mixed-fleet: %v\nlog:\n%s", err, logb.String())
	}
	checkReport(t, rep, "mixed-fleet")
	if rep.Endpoints[load.EndpointResolve].Ops == 0 {
		t.Error("mixed-fleet never resolved")
	}
	if rep.Extra["routed"] == 0 {
		t.Error("mixed-fleet routed no questions through the marketplace")
	}
	if rep.Extra["spend_cents"] == 0 {
		t.Error("mixed-fleet spent nothing — the paid backends were never used")
	}
}

// TestBackendOutageSmoke exercises the marketplace fault drill: the
// preferred backend drops every question, yet resolves complete with
// zero request errors and the market still routes and spends.
func TestBackendOutageSmoke(t *testing.T) {
	var logb strings.Builder
	rep, err := runBackendOutage(Options{Dir: t.TempDir(), Smoke: true, Log: &logb})
	if err != nil {
		t.Fatalf("backend-outage: %v\nlog:\n%s", err, logb.String())
	}
	checkReport(t, rep, "backend-outage")
	if rep.Endpoints[load.EndpointResolve].Ops == 0 {
		t.Error("backend-outage never resolved")
	}
	if rep.Extra["routed"] == 0 {
		t.Error("backend-outage routed no questions")
	}
}

// TestCrashRestart is the durability drill: all committed-prefix
// assertions live inside the scenario; this runs them for real (CI
// repeats it under -race and at 3 shards).
func TestCrashRestart(t *testing.T) {
	var logb strings.Builder
	rep, err := runCrashRestart(Options{Dir: t.TempDir(), Smoke: true, Log: &logb})
	if err != nil {
		t.Fatalf("crash-restart: %v\nlog:\n%s", err, logb.String())
	}
	checkReport(t, rep, "crash-restart")
	if rep.Extra["acked_floor_records"] < 150 {
		t.Errorf("ack floor %v below the smoke target", rep.Extra["acked_floor_records"])
	}
	if rep.Extra["recovered_records"] < rep.Extra["acked_floor_records"] {
		t.Errorf("recovered %v < floor %v — the scenario should have failed",
			rep.Extra["recovered_records"], rep.Extra["acked_floor_records"])
	}
	if rep.Extra["recovery_ms"] <= 0 {
		t.Error("recovery_ms not recorded")
	}
}

// TestCrashRestartGroupCommit runs the drill with the batched write
// path on (2ms commit window, 32 KiB segments): acks ride group fsyncs
// and the live tree rotates segments while it is being copied, and the
// committed-prefix contract must still hold in every image.
func TestCrashRestartGroupCommit(t *testing.T) {
	var logb strings.Builder
	rep, err := runCrashRestartGroupCommit(Options{Dir: t.TempDir(), Smoke: true, Log: &logb})
	if err != nil {
		t.Fatalf("crash-restart-groupcommit: %v\nlog:\n%s", err, logb.String())
	}
	checkReport(t, rep, "crash-restart-groupcommit")
	if rep.Extra["acked_floor_records"] < 150 {
		t.Errorf("ack floor %v below the smoke target", rep.Extra["acked_floor_records"])
	}
	if rep.Extra["recovered_records"] < rep.Extra["acked_floor_records"] {
		t.Errorf("recovered %v < floor %v — the scenario should have failed",
			rep.Extra["recovered_records"], rep.Extra["acked_floor_records"])
	}
}

// TestCrashRestartGroupCommitSharded repeats the batched drill at 3
// shards: three group-committing shard WALs plus the per-event router
// WAL, each rotating independently under the copy.
func TestCrashRestartGroupCommitSharded(t *testing.T) {
	var logb strings.Builder
	rep, err := runCrashRestartGroupCommit(Options{Dir: t.TempDir(), Shards: 3, Smoke: true, Log: &logb})
	if err != nil {
		t.Fatalf("crash-restart-groupcommit -shards 3: %v\nlog:\n%s", err, logb.String())
	}
	checkReport(t, rep, "crash-restart-groupcommit")
	if rep.Shards != 3 {
		t.Errorf("report shards = %d, want 3", rep.Shards)
	}
}

// TestReplicaReadsSmoke runs the replicated read topology end to end:
// leader plus two followers, reads drained through the followers, and
// both followers settling to the leader's exact state afterwards.
func TestReplicaReadsSmoke(t *testing.T) {
	var logb strings.Builder
	rep, err := runReplicaReads(Options{Dir: t.TempDir(), Smoke: true, Log: &logb})
	if err != nil {
		t.Fatalf("replica-reads: %v\nlog:\n%s", err, logb.String())
	}
	checkReport(t, rep, "replica-reads")
	if rep.Endpoints[load.EndpointClusters].Ops == 0 {
		t.Error("replica-reads measured no cluster reads")
	}
	if rep.Extra["leader_records"] == 0 {
		t.Error("replica-reads ingested nothing")
	}
}

// TestReplicaFailoverSmoke runs the failover drill for real: leader
// killed mid-ingest, follower promoted over its journals, and the
// committed-prefix contract checked inside the scenario (CI repeats it
// under -race and at 3 shards).
func TestReplicaFailoverSmoke(t *testing.T) {
	var logb strings.Builder
	rep, err := runReplicaFailover(Options{Dir: t.TempDir(), Smoke: true, Log: &logb})
	if err != nil {
		t.Fatalf("replica-failover: %v\nlog:\n%s", err, logb.String())
	}
	checkReport(t, rep, "replica-failover")
	if rep.Extra["acked_floor_records"] < 150 {
		t.Errorf("ack floor %v below the smoke target", rep.Extra["acked_floor_records"])
	}
	if rep.Extra["promoted_records"] < rep.Extra["acked_floor_records"] {
		t.Errorf("promoted %v < floor %v — the scenario should have failed",
			rep.Extra["promoted_records"], rep.Extra["acked_floor_records"])
	}
	if rep.Extra["promote_ms"] <= 0 {
		t.Error("promote_ms not recorded")
	}
}

// TestReplicaFailoverSharded repeats the failover drill at 3 shards:
// three shard journals plus the router stream, promoted together.
func TestReplicaFailoverSharded(t *testing.T) {
	var logb strings.Builder
	rep, err := runReplicaFailover(Options{Dir: t.TempDir(), Shards: 3, Smoke: true, Log: &logb})
	if err != nil {
		t.Fatalf("replica-failover -shards 3: %v\nlog:\n%s", err, logb.String())
	}
	checkReport(t, rep, "replica-failover")
	if rep.Shards != 3 {
		t.Errorf("report shards = %d, want 3", rep.Shards)
	}
}

// TestCrashRestartSharded repeats the drill at 3 shards, where the
// crash image spans a router journal plus three shard journals copied
// at different instants.
func TestCrashRestartSharded(t *testing.T) {
	var logb strings.Builder
	rep, err := runCrashRestart(Options{Dir: t.TempDir(), Shards: 3, Smoke: true, Log: &logb})
	if err != nil {
		t.Fatalf("crash-restart -shards 3: %v\nlog:\n%s", err, logb.String())
	}
	checkReport(t, rep, "crash-restart")
	if rep.Shards != 3 {
		t.Errorf("report shards = %d, want 3", rep.Shards)
	}
	if rep.Extra["distinct_pairs_floor"] == 0 {
		t.Error("no answer pairs acked before the crash image; the answers floor was not exercised")
	}
}
