// Package scenarios is the orchestrated serving-layer benchmark suite:
// each scenario boots a real journaled acdserve in-process
// (internal/serve), drives it with a configured internal/load workload,
// and returns the load report. The suite covers steady state
// (baseline), saturation (high-load), flash crowds (bursty), snapshot
// read stress (read-heavy), a slow faulty crowd behind /resolve
// (degraded-crowd), a mid-ingest crash image whose recovery is
// checked against the committed-prefix contract (crash-restart), the
// replication topology: followers absorbing snapshot reads
// (replica-reads) and a leader kill with follower promotion
// (replica-failover), and the crowd marketplace: budget-aware routing
// under a mid-run price spike (mixed-fleet) and the preferred
// backend dropping every question (backend-outage). Every
// scenario runs in a seconds-scale smoke mode (CI) and a full mode
// (committed BENCH numbers); scripts/loadbench.sh orchestrates both,
// and docs/serving.md maps each scenario to the question it answers.
package scenarios

import (
	"context"
	"fmt"
	"io"
	"path/filepath"
	"time"

	"acd/internal/dataset"
	"acd/internal/load"
	"acd/internal/obs"
	"acd/internal/serve"
)

// Options configures one suite run; the zero value needs only Dir.
type Options struct {
	// Dir is the scratch directory for journals and crash images
	// (required; each scenario uses its own subdirectory).
	Dir string
	// Shards is the server shard count (default 1).
	Shards int
	// Smoke shrinks every scenario to a seconds-scale run for CI; full
	// mode produces the committed benchmark numbers.
	Smoke bool
	// Seed drives the server permutations and the workload sequence
	// (default 1).
	Seed int64
	// CommitWindow enables journal group commit on the scenario
	// servers: appends within the window share one fsync and acks are
	// pipelined. 0 keeps one fsync per event. The
	// crash-restart-groupcommit scenario forces it on.
	CommitWindow time.Duration
	// RotateBytes rotates scenario-server WAL segments past this size
	// (0 = no rotation).
	RotateBytes int64
	// Log receives progress lines (nil = discard).
	Log io.Writer
}

// withDefaults validates and resolves the zero values.
func (o Options) withDefaults() (Options, error) {
	if o.Dir == "" {
		return o, fmt.Errorf("scenarios: Dir required")
	}
	if o.Shards == 0 {
		o.Shards = 1
	}
	if o.Shards < 0 {
		return o, fmt.Errorf("scenarios: negative shard count")
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Log == nil {
		o.Log = io.Discard
	}
	return o, nil
}

// phases returns the warmup and measured durations for the mode.
func (o Options) phases() (warmup, measure time.Duration) {
	if o.Smoke {
		return 100 * time.Millisecond, 700 * time.Millisecond
	}
	return 2 * time.Second, 8 * time.Second
}

// pool builds the churn pool for the mode.
func (o Options) pool() ([]load.Payload, error) {
	cfg := dataset.SyntheticConfig{Entities: 500, Records: 5000, Seed: o.Seed}
	if o.Smoke {
		cfg.Entities, cfg.Records = 60, 300
	}
	return load.SyntheticPool(cfg)
}

// Scenario is one named benchmark: a workload shape plus the server
// configuration it runs against.
type Scenario struct {
	// Name is the CLI-facing identifier (stable; documented in
	// docs/serving.md).
	Name string
	// Desc is a one-line description for -list output.
	Desc string
	// Run executes the scenario and returns its report.
	Run func(Options) (*load.Report, error)
}

// All returns every scenario in canonical order.
func All() []Scenario {
	return []Scenario{
		{
			Name: "baseline",
			Desc: "steady-state default mix, closed loop at moderate concurrency",
			Run:  runBaseline,
		},
		{
			Name: "high-load",
			Desc: "write-heavy mix at high closed-loop concurrency (saturation)",
			Run:  runHighLoad,
		},
		{
			Name: "bursty",
			Desc: "open-loop Poisson arrivals with square-wave rate bursts",
			Run:  runBursty,
		},
		{
			Name: "read-heavy",
			Desc: "snapshot read stress: mostly GET /clusters while resolves churn",
			Run:  runReadHeavy,
		},
		{
			Name: "degraded-crowd",
			Desc: "resolves against a slow, faulty simulated crowd source",
			Run:  runDegradedCrowd,
		},
		{
			Name: "crash-restart",
			Desc: "mid-ingest crash image; recovery checked against the committed-prefix contract",
			Run:  runCrashRestart,
		},
		{
			Name: "crash-restart-groupcommit",
			Desc: "the crash drill with group commit and segment rotation on; same committed-prefix contract",
			Run:  runCrashRestartGroupCommit,
		},
		{
			Name: "replica-reads",
			Desc: "leader takes writes while two followers absorb every snapshot read",
			Run:  runReplicaReads,
		},
		{
			Name: "replica-failover",
			Desc: "leader killed mid-ingest; follower promoted over its journals, committed-prefix contract checked",
			Run:  runReplicaFailover,
		},
		{
			Name: "mixed-fleet",
			Desc: "resolves buy answers across a heterogeneous crowd fleet; the cheap backend's price spikes mid-run",
			Run:  runMixedFleet,
		},
		{
			Name: "backend-outage",
			Desc: "the router's preferred backend drops every question; retry/degrade keeps resolves flowing",
			Run:  runBackendOutage,
		},
	}
}

// Find returns the named scenario.
func Find(name string) (Scenario, bool) {
	for _, s := range All() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// startServer boots a journaled in-process server for a scenario.
func startServer(o Options, name string, src *serve.SimCrowdConfig) (*serve.Local, error) {
	cfg := serve.Config{
		Journal:      filepath.Join(o.Dir, name),
		Shards:       o.Shards,
		Seed:         o.Seed,
		CommitWindow: o.CommitWindow,
		RotateBytes:  o.RotateBytes,
		Obs:          obs.New(),
	}
	if src != nil {
		cfg.Source = serve.DegradedCrowd(*src)
	}
	return serve.StartLocal(cfg)
}

// runWorkload is the shared scenario body: boot a server, run one
// generator configuration against it, close gracefully, label the
// report.
func runWorkload(o Options, name string, src *serve.SimCrowdConfig, shape func(*load.Config)) (*load.Report, error) {
	o, err := o.withDefaults()
	if err != nil {
		return nil, err
	}
	l, err := startServer(o, name, src)
	if err != nil {
		return nil, err
	}
	defer l.Close()
	pool, err := o.pool()
	if err != nil {
		return nil, err
	}
	warmup, measure := o.phases()
	cfg := load.Config{
		Target:   l.URL,
		Pool:     pool,
		Warmup:   warmup,
		Duration: measure,
		Seed:     o.Seed,
	}
	shape(&cfg)
	g, err := load.New(cfg)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(o.Log, "scenario %s: %d shards, warmup %v, measure %v\n", name, o.Shards, warmup, measure)
	rep, err := g.Run(context.Background())
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", name, err)
	}
	rep.Scenario = name
	rep.Shards = o.Shards
	if errs := rep.TotalErrors(); errs > 0 {
		return rep, fmt.Errorf("scenario %s: %d request errors during measured window", name, errs)
	}
	if err := l.Close(); err != nil {
		return rep, fmt.Errorf("scenario %s: closing server: %w", name, err)
	}
	return rep, nil
}

func runBaseline(o Options) (*load.Report, error) {
	return runWorkload(o, "baseline", nil, func(c *load.Config) {
		c.Concurrency = 8
		c.ResolveEvery = 500 * time.Millisecond
		if o.Smoke {
			c.Concurrency = 4
			c.ResolveEvery = 200 * time.Millisecond
		}
	})
}

func runHighLoad(o Options) (*load.Report, error) {
	return runWorkload(o, "high-load", nil, func(c *load.Config) {
		c.Mix = load.Mix{Records: 70, Answers: 20, Clusters: 8, Metrics: 2}
		c.Concurrency = 32
		c.RecordBatch = 16
		if o.Smoke {
			c.Concurrency = 8
		}
	})
}

func runBursty(o Options) (*load.Report, error) {
	return runWorkload(o, "bursty", nil, func(c *load.Config) {
		c.Arrival = load.ArrivalPoisson
		c.Concurrency = 64
		c.Rate = 300
		c.Burst = &load.Burst{Rate: 1500, Period: 2 * time.Second, Duty: 0.3}
		if o.Smoke {
			c.Rate = 150
			c.Burst = &load.Burst{Rate: 600, Period: 400 * time.Millisecond, Duty: 0.3}
		}
	})
}

func runReadHeavy(o Options) (*load.Report, error) {
	return runWorkload(o, "read-heavy", nil, func(c *load.Config) {
		c.Mix = load.Mix{Records: 8, Answers: 2, Clusters: 70, Metrics: 20}
		c.Concurrency = 16
		c.ResolveEvery = 300 * time.Millisecond
		if o.Smoke {
			c.Concurrency = 8
			c.ResolveEvery = 150 * time.Millisecond
		}
	})
}

func runDegradedCrowd(o Options) (*load.Report, error) {
	// Crowd fault rates stay constant across modes; only the latency
	// scale shrinks for smoke. Resolve cost is roughly (pending pairs ×
	// per-query latency), so the mix is ingest-light — the scenario
	// measures how crowd degradation stretches /resolve and whether
	// reads stay fast beside it, not raw ingest throughput.
	// Resolve cost is close to (pending pairs × per-query crowd
	// latency) — every churned duplicate densifies the candidate graph,
	// so the mix here is ingest-light and resolves run frequently to
	// keep each pass's pair backlog small. The measurement of interest
	// is how much the faulty crowd stretches /resolve while snapshot
	// reads stay flat.
	crowd := &serve.SimCrowdConfig{
		Seed:        o.Seed,
		BaseLatency: 500 * time.Microsecond,
		Spike:       0.05,
		Drop:        0.05,
		Error:       0.05,
		Timeout:     10 * time.Millisecond,
		Retries:     1,
	}
	if o.Smoke {
		crowd.BaseLatency = 20 * time.Microsecond
		crowd.Timeout = time.Millisecond
	}
	return runWorkload(o, "degraded-crowd", crowd, func(c *load.Config) {
		c.Mix = load.Mix{Records: 10, Answers: 5, Clusters: 60, Metrics: 25}
		c.Concurrency = 8
		c.ResolveEvery = 400 * time.Millisecond
		if o.Smoke {
			c.Concurrency = 4
			c.ResolveEvery = 150 * time.Millisecond
			c.Duration = 1200 * time.Millisecond
		}
	})
}
