package scenarios

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"time"

	"acd/internal/load"
	"acd/internal/obs"
	"acd/internal/serve"
)

// startFollower boots an in-process follower tracking leaderURL. The
// engine knobs must match the leader's (same seed, default pipeline
// parameters) so the standby's replay is the leader's recovery fold.
func startFollower(o Options, name, leaderURL string) (*serve.Local, error) {
	return serve.StartLocal(serve.Config{
		Journal:   filepath.Join(o.Dir, name),
		Follow:    leaderURL + "/replica/stream",
		ReplicaID: name,
		Seed:      o.Seed,
		Obs:       obs.New(),
	})
}

// followerLag reads one follower's total replication lag.
func followerLag(base string) (int64, error) {
	resp, err := http.Get(base + "/replica/status")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var st struct {
		Lag int64 `json:"lag"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return 0, err
	}
	return st.Lag, nil
}

// awaitDrained polls until every follower holds the (now quiescent)
// leader's exact record count and reports zero lag. Comparing state
// directly matters: the lag gauge is computed against the leader
// watermark from the follower's *latest fetched batch*, so between
// fetch rounds it can read zero while committed events are still in
// flight. The leader count is re-read every pass — straggler writes
// from the load generator can still land just after the measured
// window closes, and a count captured once would leave the followers
// "ahead" of it forever.
func awaitDrained(timeout time.Duration, leader *serve.Local, followers ...*serve.Local) error {
	deadline := time.Now().Add(timeout)
	for {
		want := leader.Server.Snapshot().Records
		drained := true
		for _, f := range followers {
			lag, err := followerLag(f.URL)
			if err != nil {
				return err
			}
			if lag != 0 || f.Server.Snapshot().Records != want {
				drained = false
				break
			}
		}
		if drained && leader.Server.Snapshot().Records == want {
			return nil
		}
		if time.Now().After(deadline) {
			for i, f := range followers {
				if got := f.Server.Snapshot().Records; got != want {
					return fmt.Errorf("follower %d still at %d records after %v, leader has %d", i+1, got, timeout, want)
				}
			}
			return fmt.Errorf("followers still lagging after %v", timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// runReplicaReads measures the replicated read topology: one leader
// takes the writes while two followers absorb every snapshot read
// (GET /clusters and /metrics round-robin). Read latencies are then
// follower-standby latencies, isolated from the leader's write path;
// after the measured window the followers must drain to zero lag and
// hold the leader's exact record count — stale reads are always
// prefix-consistent, never forked.
func runReplicaReads(o Options) (*load.Report, error) {
	o, err := o.withDefaults()
	if err != nil {
		return nil, err
	}
	leader, err := startServer(o, "replica-reads-leader", nil)
	if err != nil {
		return nil, err
	}
	defer leader.Close()
	f1, err := startFollower(o, "replica-reads-f1", leader.URL)
	if err != nil {
		return nil, err
	}
	defer f1.Close()
	f2, err := startFollower(o, "replica-reads-f2", leader.URL)
	if err != nil {
		return nil, err
	}
	defer f2.Close()

	pool, err := o.pool()
	if err != nil {
		return nil, err
	}
	warmup, measure := o.phases()
	cfg := load.Config{
		Target:       leader.URL,
		ReadTargets:  []string{f1.URL, f2.URL},
		Pool:         pool,
		Warmup:       warmup,
		Duration:     measure,
		Seed:         o.Seed,
		Mix:          load.Mix{Records: 8, Answers: 2, Clusters: 70, Metrics: 20},
		Concurrency:  16,
		ResolveEvery: 300 * time.Millisecond,
	}
	if o.Smoke {
		cfg.Concurrency = 8
		cfg.ResolveEvery = 150 * time.Millisecond
	}
	g, err := load.New(cfg)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(o.Log, "replica-reads: leader + 2 followers, %d shards, warmup %v, measure %v\n", o.Shards, warmup, measure)
	rep, err := g.Run(context.Background())
	if err != nil {
		return nil, fmt.Errorf("replica-reads: %w", err)
	}
	if errs := rep.TotalErrors(); errs > 0 {
		return rep, fmt.Errorf("replica-reads: %d request errors during measured window", errs)
	}

	// Writes stopped: both followers must drain, and drained state is
	// the leader's.
	if err := awaitDrained(10*time.Second, leader, f1, f2); err != nil {
		return rep, fmt.Errorf("replica-reads: %w", err)
	}
	want := leader.Server.Snapshot().Records
	rep.Scenario = "replica-reads"
	rep.Shards = o.Shards
	rep.Extra = map[string]float64{
		"leader_records": float64(want),
		"followers":      2,
	}
	return rep, nil
}

// runReplicaFailover is the replication durability drill. A leader
// ingests under load with a follower streaming its journals; at the
// ack target the leader is killed without ceremony and the follower is
// promoted over the dead leader's journal directory. The promoted
// server must uphold the same committed-prefix contract the
// crash-restart scenarios enforce — every record and answer acked
// before the kill is present, nothing was invented or double-applied —
// and must take new writes. The report's Extra carries the acked
// floors, the promoted occupancy, the follower's lag at the moment of
// the kill, and the promotion wall time (the failover cost an operator
// actually pays).
func runReplicaFailover(o Options) (*load.Report, error) {
	o, err := o.withDefaults()
	if err != nil {
		return nil, err
	}
	leaderDir := filepath.Join(o.Dir, "replica-failover-leader")
	leader, err := startServer(o, "replica-failover-leader", nil)
	if err != nil {
		return nil, err
	}
	defer leader.Abort()
	fol, err := startFollower(o, "replica-failover-standby", leader.URL)
	if err != nil {
		return nil, err
	}
	defer fol.Close()

	pool, err := o.pool()
	if err != nil {
		return nil, err
	}
	ackTarget := int64(1500)
	if o.Smoke {
		ackTarget = 150
	}
	g, err := load.New(load.Config{
		Target:      leader.URL,
		ReadTargets: []string{fol.URL},
		Pool:        pool,
		Mix:         load.Mix{Records: 65, Answers: 25, Clusters: 8, Metrics: 2},
		Concurrency: 8,
		Duration:    5 * time.Minute, // canceled once the ack target is hit
		Seed:        o.Seed,
		TrackPairs:  true,
	})
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan *load.Report, 1)
	runErr := make(chan error, 1)
	go func() {
		rep, err := g.Run(ctx)
		runErr <- err
		done <- rep
	}()
	deadline := time.Now().Add(2 * time.Minute)
	for g.Counters().AckedRecords < ackTarget {
		if time.Now().After(deadline) {
			cancel()
			<-done
			return nil, fmt.Errorf("replica-failover: only %d/%d records acked before deadline",
				g.Counters().AckedRecords, ackTarget)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Floor before the kill, ceiling after: the contract brackets.
	floor := g.Counters()
	cancel()
	if err := <-runErr; err != nil && ctx.Err() == nil {
		return nil, fmt.Errorf("replica-failover: generator: %w", err)
	}
	rep := <-done
	ceiling := g.Counters()
	lagAtKill, err := followerLag(fol.URL)
	if err != nil {
		return nil, fmt.Errorf("replica-failover: reading lag: %w", err)
	}
	fmt.Fprintf(o.Log, "replica-failover: killing leader at %d acked records (%d distinct pairs), follower lag %d\n",
		floor.AckedRecords, floor.DistinctPairs, lagAtKill)
	if err := leader.Abort(); err != nil {
		return nil, fmt.Errorf("replica-failover: killing leader: %w", err)
	}

	// Promote over the dead leader's directory: fence its epoch and
	// replay whatever committed tail the follower had not yet shipped.
	t0 := time.Now()
	code, body, err := httpPostBody(fol.URL+"/replica/promote",
		fmt.Sprintf(`{"source_journal":%q}`, leaderDir))
	if err != nil {
		return nil, fmt.Errorf("replica-failover: promote: %w", err)
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("replica-failover: promote: status %d: %s", code, body)
	}
	promoteDur := time.Since(t0)

	snap := fol.Server.Snapshot()
	fmt.Fprintf(o.Log, "replica-failover: promoted to %d records, %d answers in %v\n",
		snap.Records, snap.Answers, promoteDur.Round(time.Millisecond))
	if int64(snap.Records) < floor.AckedRecords {
		return nil, fmt.Errorf("replica-failover: CONTRACT VIOLATION: %d records acked before the kill, only %d on the promoted leader",
			floor.AckedRecords, snap.Records)
	}
	if int64(snap.Records) > ceiling.IssuedRecords {
		return nil, fmt.Errorf("replica-failover: CONTRACT VIOLATION: promoted leader has %d records but only %d were ever issued",
			snap.Records, ceiling.IssuedRecords)
	}
	if int64(snap.Answers) < floor.DistinctPairs {
		return nil, fmt.Errorf("replica-failover: CONTRACT VIOLATION: %d distinct answer pairs acked before the kill, only %d on the promoted leader",
			floor.DistinctPairs, snap.Answers)
	}
	seen := make(map[int]bool, snap.Records)
	for _, cluster := range snap.Clusters {
		for _, id := range cluster {
			if id < 0 || int64(id) >= ceiling.IssuedRecords {
				return nil, fmt.Errorf("replica-failover: CONTRACT VIOLATION: cluster member %d was never issued (ceiling %d)", id, ceiling.IssuedRecords)
			}
			if seen[id] {
				return nil, fmt.Errorf("replica-failover: CONTRACT VIOLATION: record %d appears in two clusters — event double-applied", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != snap.Records {
		return nil, fmt.Errorf("replica-failover: CONTRACT VIOLATION: clusters cover %d members but %d records promoted", len(seen), snap.Records)
	}
	// The promoted leader must take writes.
	if err := probeRecovered(fol); err != nil {
		return nil, fmt.Errorf("replica-failover: promoted server not functional: %w", err)
	}

	rep.Scenario = "replica-failover"
	rep.Shards = o.Shards
	rep.Extra = map[string]float64{
		"acked_floor_records":  float64(floor.AckedRecords),
		"distinct_pairs_floor": float64(floor.DistinctPairs),
		"promoted_records":     float64(snap.Records),
		"promoted_answers":     float64(snap.Answers),
		"lag_at_kill":          float64(lagAtKill),
		"promote_ms":           float64(promoteDur) / float64(time.Millisecond),
	}
	return rep, nil
}

// httpPostBody issues one POST and returns the status and body.
func httpPostBody(url, body string) (int, string, error) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, "", err
	}
	return resp.StatusCode, string(b), nil
}
