package scenarios

import (
	"context"
	"fmt"
	"path/filepath"
	"time"

	"acd/internal/load"
	"acd/internal/market"
	"acd/internal/obs"
	"acd/internal/serve"
)

// The marketplace scenarios drive /resolve against a heterogeneous
// crowd fleet (internal/market) instead of a single simulated source:
// mixed-fleet measures budget-aware routing under a mid-run price
// spike on the cheap backend, and backend-outage measures the fault
// path when the router's preferred backend stops answering (every
// question drops, forcing the retry/degrade machinery). Both fold the
// router's accounting — total and per-backend spend, routed and
// inferred question counts — into the report's Extra metrics, which
// flow into BENCH_N.json as Load/<scenario>/scenario.

// startMarketServer boots a journaled server whose resolve questions
// route through a marketplace built from spec (with optional scheduled
// price spikes). The returned recorder carries the market/* and
// crowd/backend/* counters the scenario reads after the run.
func startMarketServer(o Options, name, spec string, spikes []market.Spike) (*serve.Local, *obs.Recorder, error) {
	rec := obs.New()
	backends, err := market.Fleet(spec, serve.PairScore(o.Seed), o.Seed)
	if err != nil {
		return nil, nil, err
	}
	m := market.New(market.Config{
		Backends:     backends,
		BudgetCents:  market.Unlimited,
		Order:        market.OrderConfidence,
		ShortCircuit: true,
		Spikes:       spikes,
		Seed:         o.Seed,
	})
	m.SetRecorder(rec)
	l, err := serve.StartLocal(serve.Config{
		Journal:      filepath.Join(o.Dir, name),
		Shards:       o.Shards,
		Seed:         o.Seed,
		CommitWindow: o.CommitWindow,
		RotateBytes:  o.RotateBytes,
		Obs:          rec,
		Source:       m,
	})
	if err != nil {
		return nil, nil, err
	}
	return l, rec, nil
}

// runMarketScenario is the shared body: boot a marketplace server, run
// the resolve-heavy workload shape the degraded-crowd scenario uses
// (the measurement of interest is the /resolve path, not ingest), then
// fold the router's spend accounting into the report.
func runMarketScenario(o Options, name, spec string, spikes []market.Spike, shape func(*load.Config)) (*load.Report, error) {
	o, err := o.withDefaults()
	if err != nil {
		return nil, err
	}
	specs, err := market.ParseFleet(spec)
	if err != nil {
		return nil, err
	}
	l, rec, err := startMarketServer(o, name, spec, spikes)
	if err != nil {
		return nil, err
	}
	defer l.Close()
	pool, err := o.pool()
	if err != nil {
		return nil, err
	}
	warmup, measure := o.phases()
	cfg := load.Config{
		Target:       l.URL,
		Pool:         pool,
		Warmup:       warmup,
		Duration:     measure,
		Seed:         o.Seed,
		Mix:          load.Mix{Records: 10, Answers: 5, Clusters: 60, Metrics: 25},
		Concurrency:  8,
		ResolveEvery: 400 * time.Millisecond,
	}
	if o.Smoke {
		cfg.Concurrency = 4
		cfg.ResolveEvery = 150 * time.Millisecond
	}
	if shape != nil {
		shape(&cfg)
	}
	g, err := load.New(cfg)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(o.Log, "scenario %s: fleet %q, %d shards, warmup %v, measure %v\n",
		name, spec, o.Shards, warmup, measure)
	rep, err := g.Run(context.Background())
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", name, err)
	}
	rep.Scenario = name
	rep.Shards = o.Shards
	if errs := rep.TotalErrors(); errs > 0 {
		return rep, fmt.Errorf("scenario %s: %d request errors during measured window", name, errs)
	}
	rep.Extra = map[string]float64{
		"spend_cents":      float64(rec.Counter(market.MetricSpendCents)),
		"routed":           float64(rec.Counter(market.MetricRouted)),
		"short_circuited":  float64(rec.Counter(market.MetricShortCircuited)),
		"budget_fallbacks": float64(rec.Counter(market.MetricFallbacks)),
	}
	for _, s := range specs {
		rep.Extra["spend_"+s.ID+"_cents"] = float64(rec.Counter(market.BackendMetric(s.ID, "cents")))
		rep.Extra["questions_"+s.ID] = float64(rec.Counter(market.BackendMetric(s.ID, "questions")))
	}
	if err := l.Close(); err != nil {
		return rep, fmt.Errorf("scenario %s: closing server: %w", name, err)
	}
	return rep, nil
}

// runMixedFleet routes resolve questions across the default
// heterogeneous fleet while the cheap backend's price spikes 8× partway
// through the run: the router must shift purchases toward the
// now-relatively-cheaper accurate channel (or the free machine
// fallback) without stalling resolves. The spike lands early enough
// that both price regimes fall inside the measured window.
func runMixedFleet(o Options) (*load.Report, error) {
	after := 400
	if o.Smoke {
		after = 40
	}
	return runMarketScenario(o, "mixed-fleet", market.DefaultFleetSpec,
		[]market.Spike{{Backend: "fast", After: after, Factor: 8}}, nil)
}

// runBackendOutage is the marketplace fault drill: the cheap backend
// the router prefers drops every question (ChaosSource drop ≈ 1), so
// each purchase from it rides the retry-then-degrade path while the
// careful backend and the machine fallback keep answers flowing. The
// measurement of interest is how much the outage stretches /resolve
// while snapshot reads stay flat — the degraded-crowd question, asked
// of the marketplace's per-backend fault isolation.
func runBackendOutage(o Options) (*load.Report, error) {
	// The dropped backend's retry deadline is pinned tight: each of its
	// questions burns (timeout × attempts) before degrading, and with
	// the default crowd-scale deadline a 98% outage would stretch every
	// resolve past the measured window.
	spec := "fast:1:20:0.12:drop=0.98:timeout=1ms;careful:6:10:0.02:lat=1ms;machine:0:0:0.35:machine"
	if o.Smoke {
		spec = "fast:1:20:0.12:drop=0.98:timeout=250us;careful:6:10:0.02;machine:0:0:0.35:machine"
	}
	// Even with a tight timeout, every dropped question still pays real
	// retry sleeps, so resolves run long — the window stretches (as the
	// degraded-crowd scenario's does) and the resolve cadence tightens so
	// each pass's question backlog stays small enough to finish inside it.
	return runMarketScenario(o, "backend-outage", spec, nil, func(c *load.Config) {
		if o.Smoke {
			c.ResolveEvery = 100 * time.Millisecond
			c.Duration = 2500 * time.Millisecond
		}
	})
}
