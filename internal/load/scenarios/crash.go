package scenarios

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"acd/internal/journal"
	"acd/internal/load"
	"acd/internal/serve"
)

// runCrashRestart is the durability drill. It ingests under load,
// snapshots the generator's acked counters, copies the live journal
// directory mid-write (the crash image: an arbitrary reachable disk
// state, torn tail included), aborts the server without a checkpoint,
// then recovers a fresh server from the image and checks the
// committed-prefix contract programmatically:
//
//   - every record acked before the copy began is present (ack follows
//     the fsync, so its journal entry is in the copied prefix);
//   - no record beyond what was ever issued appears (nothing invented,
//     nothing double-applied);
//   - the recovered clustering is an exact partition of the recovered
//     records — each id in exactly one cluster;
//   - every distinct answer pair fully acked before the copy is in the
//     recovered answer cache;
//   - the recovered server still serves: it accepts new records and
//     completes a resolve over HTTP.
//
// Any violation is returned as an error (CI runs this under -race and
// gates on it). The report carries the generator's measured window plus
// Extra metrics: the acked floors, the recovered occupancy, and the
// recovery wall time.
func runCrashRestart(o Options) (*load.Report, error) {
	return crashDrill(o, "crash-restart")
}

// runCrashRestartGroupCommit is the same drill with the batched write
// path on: a 2ms commit window (acks pipelined behind group fsyncs)
// and small WAL segments so rotation happens repeatedly while the live
// tree is being copied. The committed-prefix contract is identical —
// an ack is only counted after the group holding its event synced, so
// every acked event must still be in the image.
func runCrashRestartGroupCommit(o Options) (*load.Report, error) {
	o.CommitWindow = 2 * time.Millisecond
	o.RotateBytes = 32 << 10
	return crashDrill(o, "crash-restart-groupcommit")
}

// crashDrill is the shared body of the crash-restart scenarios; name
// labels the report and the scratch directories.
func crashDrill(o Options, name string) (*load.Report, error) {
	o, err := o.withDefaults()
	if err != nil {
		return nil, err
	}
	liveDir := filepath.Join(o.Dir, name+"-live")
	imageDir := filepath.Join(o.Dir, name+"-image")
	l, err := startServer(o, name+"-live", nil)
	if err != nil {
		return nil, err
	}
	defer l.Close()
	pool, err := o.pool()
	if err != nil {
		return nil, err
	}
	ackTarget := int64(1500)
	if o.Smoke {
		ackTarget = 150
	}
	g, err := load.New(load.Config{
		Target:      l.URL,
		Pool:        pool,
		Mix:         load.Mix{Records: 70, Answers: 30},
		Concurrency: 8,
		Duration:    5 * time.Minute, // canceled once the ack target is hit
		Seed:        o.Seed,
		TrackPairs:  true,
	})
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan *load.Report, 1)
	runErr := make(chan error, 1)
	go func() {
		rep, err := g.Run(ctx)
		runErr <- err
		done <- rep
	}()

	// Wait for the ingest to pass the target while still running hot.
	deadline := time.Now().Add(2 * time.Minute)
	for g.Counters().AckedRecords < ackTarget {
		if time.Now().After(deadline) {
			cancel()
			<-done
			return nil, fmt.Errorf("%s: only %d/%d records acked before deadline", name,
				g.Counters().AckedRecords, ackTarget)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The floor is read BEFORE the copy begins: each counted ack's
	// journal entry was fsynced before its response, so it is in the
	// image. The ceiling is read AFTER the copy ends: nothing beyond it
	// can appear in the image.
	floor := g.Counters()
	fmt.Fprintf(o.Log, "%s: copying journal at %d acked records, %d acked answers (%d distinct pairs)\n", name,
		floor.AckedRecords, floor.AckedAnswers, floor.DistinctPairs)
	copyStart := time.Now()
	if err := copyCrashImage(liveDir, imageDir); err != nil {
		cancel()
		<-done
		return nil, fmt.Errorf("%s: copying crash image: %w", name, err)
	}
	copyDur := time.Since(copyStart)
	ceiling := g.Counters()

	cancel()
	if err := <-runErr; err != nil && ctx.Err() == nil {
		return nil, fmt.Errorf("%s: generator: %w", name, err)
	}
	rep := <-done
	// Kill the live server with no final checkpoint — its directory is
	// now irrelevant; the image is the machine that "crashed".
	if err := l.Abort(); err != nil {
		return nil, fmt.Errorf("%s: aborting live server: %w", name, err)
	}

	t0 := time.Now()
	l2, err := serve.StartLocal(serve.Config{Journal: imageDir, Seed: o.Seed, Obs: nil})
	if err != nil {
		return nil, fmt.Errorf("%s: recovering crash image: %w", name, err)
	}
	recovery := time.Since(t0)
	defer l2.Close()
	snap := l2.Server.Snapshot()
	fmt.Fprintf(o.Log, "%s: recovered %d records, %d answers in %v\n", name,
		snap.Records, snap.Answers, recovery.Round(time.Millisecond))

	if int64(snap.Records) < floor.AckedRecords {
		return nil, fmt.Errorf("%s: CONTRACT VIOLATION: %d records acked before the crash image, only %d recovered", name,
			floor.AckedRecords, snap.Records)
	}
	if int64(snap.Records) > ceiling.IssuedRecords {
		return nil, fmt.Errorf("%s: CONTRACT VIOLATION: recovered %d records but only %d were ever issued", name,
			snap.Records, ceiling.IssuedRecords)
	}
	if int64(snap.Answers) < floor.DistinctPairs {
		return nil, fmt.Errorf("%s: CONTRACT VIOLATION: %d distinct answer pairs acked before the crash image, only %d in the recovered cache", name,
			floor.DistinctPairs, snap.Answers)
	}
	// Exact partition: every recovered record in exactly one cluster.
	// Sharded acks complete out of order, so the recovered id space can
	// have gaps (id 184 fsynced on its shard before id 150 on a busier
	// one) — the checks are by membership count and issue ceiling, not
	// id density.
	seen := make(map[int]bool, snap.Records)
	for _, cluster := range snap.Clusters {
		for _, id := range cluster {
			if id < 0 || int64(id) >= ceiling.IssuedRecords {
				return nil, fmt.Errorf("%s: CONTRACT VIOLATION: cluster member %d was never issued (ceiling %d)", name, id, ceiling.IssuedRecords)
			}
			if seen[id] {
				return nil, fmt.Errorf("%s: CONTRACT VIOLATION: record %d appears in two clusters — event double-applied", name, id)
			}
			seen[id] = true
		}
	}
	if len(seen) != snap.Records {
		return nil, fmt.Errorf("%s: CONTRACT VIOLATION: clusters cover %d members but %d records recovered", name, len(seen), snap.Records)
	}
	// The recovered server must still serve.
	if err := probeRecovered(l2); err != nil {
		return nil, fmt.Errorf("%s: recovered server not functional: %w", name, err)
	}

	rep.Scenario = name
	rep.Shards = o.Shards
	rep.Extra = map[string]float64{
		"acked_floor_records":  float64(floor.AckedRecords),
		"distinct_pairs_floor": float64(floor.DistinctPairs),
		"recovered_records":    float64(snap.Records),
		"recovered_answers":    float64(snap.Answers),
		"recovery_ms":          float64(recovery) / float64(time.Millisecond),
		"image_copy_ms":        float64(copyDur) / float64(time.Millisecond),
	}
	return rep, nil
}

// probeRecovered pushes one record batch and one resolve through the
// recovered server's HTTP API.
func probeRecovered(l *serve.Local) error {
	body := `{"records":[{"fields":{"text":"post crash probe record"}}]}`
	resp, err := httpPost(l.URL+"/records", body)
	if err != nil {
		return err
	}
	if resp != 200 {
		return fmt.Errorf("POST /records after recovery: status %d", resp)
	}
	if resp, err = httpPost(l.URL+"/resolve", ""); err != nil {
		return err
	}
	if resp != 200 {
		return fmt.Errorf("POST /resolve after recovery: status %d", resp)
	}
	return nil
}

// httpPost issues one POST with a JSON body and returns the status.
func httpPost(url, body string) (int, error) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body) //nolint:errcheck — drain before close
	return resp.StatusCode, nil
}

// copyCrashImage copies a live journal tree into a crash image. A
// concurrent copy captures each file at a different instant, so file
// order matters for cross-file dependencies: a cross-shard answer in
// the router journal refers to records in two shard journals. Records
// are always acked (shard-journal fsynced) before any answer naming
// them is even issued, so copying the router journal FIRST guarantees
// every captured answer's records land in the later shard copies —
// every image this produces is a reachable crash state. (Same-shard
// answers share a file with their records, so prefix order already
// protects them; this workload issues no resolves, the other
// cross-journal event class.)
func copyCrashImage(src, dst string) error {
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	routerSrc := filepath.Join(src, journal.RouterDir)
	if _, err := os.Stat(routerSrc); err == nil {
		if err := copyTree(routerSrc, filepath.Join(dst, journal.RouterDir)); err != nil {
			return err
		}
	}
	ents, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, e := range ents {
		if e.Name() == journal.RouterDir {
			continue // already copied, must not be refreshed
		}
		if err := copyTree(filepath.Join(src, e.Name()), filepath.Join(dst, e.Name())); err != nil {
			return err
		}
	}
	return nil
}

// copyTree copies a file or directory tree, tolerating files that grow
// during the walk — the copy of each file is some prefix of its
// eventual content, which is exactly what a hard kill leaves of an
// append-only fsynced log.
//
// Within each directory the files are copied in REVERSE lexical order.
// WAL segment names sort by starting sequence, so with rotation on the
// writer appends to the lexically last segment and may open a newer one
// mid-copy. Copying oldest-first could capture a prefix of the old tail
// segment, then — after a rotation — the full new segment: a sequence
// gap no crash can produce. Newest-first, every older segment the
// writer has moved past is already complete, so each image is an intact
// prefix of the event sequence. (Compaction, the one thing that mutates
// old segments, is off in these drills: CheckpointEvery is unset.)
func copyTree(src, dst string) error {
	info, err := os.Stat(src)
	if err != nil {
		return err
	}
	if !info.IsDir() {
		return copyFile(src, dst)
	}
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	ents, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for i := len(ents) - 1; i >= 0; i-- {
		e := ents[i]
		if err := copyTree(filepath.Join(src, e.Name()), filepath.Join(dst, e.Name())); err != nil {
			return err
		}
	}
	return nil
}

// copyFile copies one file; the result is a point-in-time prefix of a
// concurrently growing source.
func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}
