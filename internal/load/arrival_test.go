package load

import (
	"math"
	"testing"
	"time"
)

// TestScheduleDeterministic: same seed → identical draw sequence;
// different seed → different sequence.
func TestScheduleDeterministic(t *testing.T) {
	a, err := NewSchedule(42, 500, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewSchedule(42, 500, nil)
	c, _ := NewSchedule(43, 500, nil)
	same := true
	for i := 0; i < 1000; i++ {
		da, db := a.Next(), b.Next()
		if da != db {
			t.Fatalf("draw %d diverged for same seed: %v vs %v", i, da, db)
		}
		if da != c.Next() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical schedules")
	}
	if a.Elapsed() != b.Elapsed() {
		t.Errorf("elapsed diverged: %v vs %v", a.Elapsed(), b.Elapsed())
	}
}

// TestSchedulePoissonBounds: exponential interarrivals at rate r have
// mean 1/r and standard deviation 1/r; over n draws the sample mean
// must land within a generous confidence band, and the empirical CDF at
// the mean must be near 1-1/e.
func TestSchedulePoissonBounds(t *testing.T) {
	const rate = 1000.0
	const n = 50_000
	s, err := NewSchedule(7, rate, nil)
	if err != nil {
		t.Fatal(err)
	}
	mean := time.Duration(float64(time.Second) / rate)
	var sum time.Duration
	below := 0
	for i := 0; i < n; i++ {
		d := s.Next()
		if d < 0 {
			t.Fatalf("negative interarrival %v", d)
		}
		sum += d
		if d < mean {
			below++
		}
	}
	got := float64(sum) / n
	// ±5% band: sigma/sqrt(n) ≈ 0.45% of the mean, so 5% is >10 sigma.
	if math.Abs(got-float64(mean)) > 0.05*float64(mean) {
		t.Errorf("sample mean %v, want %v ±5%%", time.Duration(got), mean)
	}
	// P(X < mean) = 1 - 1/e ≈ 0.632 for an exponential.
	frac := float64(below) / n
	if math.Abs(frac-0.632) > 0.02 {
		t.Errorf("CDF at mean = %.3f, want ≈ 0.632", frac)
	}
	if s.Elapsed() != sum {
		t.Errorf("Elapsed() = %v, want %v", s.Elapsed(), sum)
	}
}

// TestScheduleBurst: the square wave applies the burst rate for exactly
// the duty fraction of each period, and draws inside the burst window
// are faster on average.
func TestScheduleBurst(t *testing.T) {
	burst := &Burst{Rate: 4000, Period: 100 * time.Millisecond, Duty: 0.3}
	s, err := NewSchedule(11, 200, burst)
	if err != nil {
		t.Fatal(err)
	}
	// rateAt: square wave boundaries.
	cases := []struct {
		t    time.Duration
		want float64
	}{
		{0, 4000},
		{29 * time.Millisecond, 4000},
		{30 * time.Millisecond, 200},
		{99 * time.Millisecond, 200},
		{100 * time.Millisecond, 4000},
		{129 * time.Millisecond, 4000},
		{130 * time.Millisecond, 200},
	}
	for _, c := range cases {
		if got := s.rateAt(c.t); got != c.want {
			t.Errorf("rateAt(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	// Draws issued during burst windows must be exponentially faster.
	var burstSum, baseSum time.Duration
	var burstN, baseN int
	for i := 0; i < 20_000; i++ {
		at := s.Elapsed()
		d := s.Next()
		if s.rateAt(at) == burst.Rate {
			burstSum += d
			burstN++
		} else {
			baseSum += d
			baseN++
		}
	}
	if burstN == 0 || baseN == 0 {
		t.Fatalf("wave never alternated: %d burst, %d base draws", burstN, baseN)
	}
	bm := float64(burstSum) / float64(burstN)
	sm := float64(baseSum) / float64(baseN)
	if bm*2 > sm {
		t.Errorf("burst mean %v not clearly faster than base mean %v",
			time.Duration(bm), time.Duration(sm))
	}
}

// TestScheduleValidation rejects non-positive rates and malformed
// bursts.
func TestScheduleValidation(t *testing.T) {
	if _, err := NewSchedule(1, 0, nil); err == nil {
		t.Error("rate 0 accepted")
	}
	if _, err := NewSchedule(1, -5, nil); err == nil {
		t.Error("negative rate accepted")
	}
	bad := []Burst{
		{Rate: 0, Period: time.Second, Duty: 0.5},
		{Rate: 100, Period: 0, Duty: 0.5},
		{Rate: 100, Period: time.Second, Duty: 0},
		{Rate: 100, Period: time.Second, Duty: 1},
	}
	for _, b := range bad {
		b := b
		if _, err := NewSchedule(1, 100, &b); err == nil {
			t.Errorf("burst %+v accepted", b)
		}
	}
}
