package load

import (
	"encoding/json"
	"fmt"
	"os"

	"acd/internal/benchfmt"
)

// Suite is the on-disk shape of an acdload run: the raw per-scenario
// reports, full fidelity. `benchjson -load` (and MergeInto) fold suites
// into the shared benchfmt document shape committed as BENCH_N.json.
type Suite struct {
	// Reports holds one report per scenario run, in execution order.
	Reports []*Report `json:"reports"`
}

// WriteSuite writes the suite as indented JSON at path.
func WriteSuite(path string, s *Suite) error {
	enc, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(enc, '\n'), 0o644)
}

// ReadSuite reads a suite file written by WriteSuite (or acdload -out).
func ReadSuite(path string) (*Suite, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Suite
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, fmt.Errorf("load: parsing suite %s: %w", path, err)
	}
	return &s, nil
}

// MergeInto folds every report into doc under its Label, replacing any
// prior results for the same label.
func (s *Suite) MergeInto(doc *benchfmt.Document) {
	for _, r := range s.Reports {
		doc.Set(r.Label(), r.BenchResults())
	}
}
