package load

import (
	"fmt"
	"io"
	"sort"
	"time"

	"acd/internal/benchfmt"
	"acd/internal/dataset"
)

// EndpointStats summarizes one endpoint's measured window.
type EndpointStats struct {
	// Ops and Errors count measured operations and how many of them
	// failed (non-200 or transport error).
	Ops    int64 `json:"ops"`
	Errors int64 `json:"errors"`
	// Throughput is successful ops per second over the measured window.
	Throughput float64 `json:"ops_per_sec"`
	// Latency percentiles over successful operations, in milliseconds.
	P50  float64 `json:"p50_ms"`
	P90  float64 `json:"p90_ms"`
	P99  float64 `json:"p99_ms"`
	P999 float64 `json:"p999_ms"`
	// Mean and Max in milliseconds.
	Mean float64 `json:"mean_ms"`
	Max  float64 `json:"max_ms"`
}

// Report is the outcome of one Generator.Run: per-endpoint stats over
// the measured window plus run-wide counters.
type Report struct {
	// Scenario is a caller-assigned label (the scenario or run name).
	Scenario string `json:"scenario"`
	// Shards is the target server's shard count, when the caller knows
	// it (0 = unknown/remote).
	Shards int `json:"shards,omitempty"`
	// Measured is the measured-window wall time.
	Measured time.Duration `json:"measured_ns"`
	// WarmupOps counts operations completed before the window opened.
	WarmupOps int64 `json:"warmup_ops"`
	// Endpoints maps endpoint name → stats; endpoints with zero
	// measured ops are omitted.
	Endpoints map[string]EndpointStats `json:"endpoints"`
	// Counters is the final progress snapshot (acked floors, peak
	// in-flight) — the crash-restart scenario's ground truth.
	Counters Counters `json:"counters"`
	// Extra carries scenario-specific measurements (e.g. the
	// crash-restart scenario's recovery_ms and recovered_records).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// ms converts a duration to float milliseconds.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// report assembles the Report after the run.
func (g *Generator) report(measured time.Duration) *Report {
	r := &Report{
		Measured:  measured,
		WarmupOps: g.warmupOps.Load(),
		Endpoints: map[string]EndpointStats{},
		Counters:  g.Counters(),
	}
	if measured <= 0 {
		measured = time.Nanosecond
	}
	for ep, st := range g.stats {
		ops := st.ops.Load()
		if ops == 0 {
			continue
		}
		h := st.hist
		r.Endpoints[ep] = EndpointStats{
			Ops:        ops,
			Errors:     st.errs.Load(),
			Throughput: float64(h.Count()) / measured.Seconds(),
			P50:        ms(h.Quantile(0.50)),
			P90:        ms(h.Quantile(0.90)),
			P99:        ms(h.Quantile(0.99)),
			P999:       ms(h.Quantile(0.999)),
			Mean:       ms(h.Mean()),
			Max:        ms(h.Max()),
		}
	}
	return r
}

// TotalOps sums measured operations across endpoints.
func (r *Report) TotalOps() int64 {
	var n int64
	for _, st := range r.Endpoints {
		n += st.Ops
	}
	return n
}

// TotalErrors sums measured errors across endpoints.
func (r *Report) TotalErrors() int64 {
	var n int64
	for _, st := range r.Endpoints {
		n += st.Errors
	}
	return n
}

// endpointOrder returns the report's endpoints in canonical order.
func (r *Report) endpointOrder() []string {
	canon := []string{EndpointRecords, EndpointAnswers, EndpointClusters, EndpointMetrics, EndpointResolve}
	var eps []string
	for _, ep := range canon {
		if _, ok := r.Endpoints[ep]; ok {
			eps = append(eps, ep)
		}
	}
	// Defensive: anything off-canon still shows up, sorted.
	var extra []string
	for ep := range r.Endpoints {
		seen := false
		for _, c := range canon {
			if ep == c {
				seen = true
				break
			}
		}
		if !seen {
			extra = append(extra, ep)
		}
	}
	sort.Strings(extra)
	return append(eps, extra...)
}

// BenchResults converts the report to the shared benchmark schema: one
// Result per endpoint named "Load/<scenario>/<endpoint>", with
// NsPerOp = mean latency and throughput/percentiles as extra metrics.
func (r *Report) BenchResults() []benchfmt.Result {
	var out []benchfmt.Result
	for _, ep := range r.endpointOrder() {
		st := r.Endpoints[ep]
		out = append(out, benchfmt.Result{
			Name:    fmt.Sprintf("Load/%s/%s", r.Scenario, ep),
			Samples: int(st.Ops),
			NsPerOp: st.Mean * float64(time.Millisecond),
			Metrics: map[string]float64{
				"ops/s":   st.Throughput,
				"p50_ms":  st.P50,
				"p90_ms":  st.P90,
				"p99_ms":  st.P99,
				"p999_ms": st.P999,
				"max_ms":  st.Max,
				"errors":  float64(st.Errors),
			},
		})
	}
	if len(r.Extra) > 0 {
		m := make(map[string]float64, len(r.Extra))
		for k, v := range r.Extra {
			m[k] = v
		}
		out = append(out, benchfmt.Result{
			Name:    fmt.Sprintf("Load/%s/scenario", r.Scenario),
			Samples: 1,
			Metrics: m,
		})
	}
	return out
}

// Label returns the benchmark-document label for this report:
// "<scenario>-<N>shard", or just the scenario when the shard count is
// unknown.
func (r *Report) Label() string {
	if r.Shards > 0 {
		return fmt.Sprintf("%s-%dshard", r.Scenario, r.Shards)
	}
	return r.Scenario
}

// Render writes a human-readable table of the report to w.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "scenario %s: %d ops in %v (%d warmup ops discarded)\n",
		r.Scenario, r.TotalOps(), r.Measured.Round(time.Millisecond), r.WarmupOps)
	fmt.Fprintf(w, "%-10s %10s %6s %10s %9s %9s %9s %9s\n",
		"endpoint", "ops", "errs", "ops/s", "p50ms", "p90ms", "p99ms", "p999ms")
	for _, ep := range r.endpointOrder() {
		st := r.Endpoints[ep]
		fmt.Fprintf(w, "%-10s %10d %6d %10.1f %9.3f %9.3f %9.3f %9.3f\n",
			ep, st.Ops, st.Errors, st.Throughput, st.P50, st.P90, st.P99, st.P999)
	}
	c := r.Counters
	fmt.Fprintf(w, "acked: %d/%d records, %d/%d answers; peak in-flight %d\n",
		c.AckedRecords, c.IssuedRecords, c.AckedAnswers, c.IssuedAnswers, c.MaxInFlight)
}

// SyntheticPool generates a churn pool from internal/dataset's generic
// synthetic generator: cfg.Records single-field records over
// cfg.Entities ground-truth entities, in a deterministic order for the
// seed.
func SyntheticPool(cfg dataset.SyntheticConfig) ([]Payload, error) {
	d, err := dataset.Synthetic(cfg)
	if err != nil {
		return nil, err
	}
	pool := make([]Payload, len(d.Records))
	for i, rec := range d.Records {
		pool[i] = Payload{Fields: rec.Fields, Entity: fmt.Sprintf("e%d", rec.Entity)}
	}
	return pool, nil
}
