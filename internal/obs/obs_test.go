package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.Count("x", 1)
	r.Gauge("g", 2)
	r.Observe("h", 3)
	r.StartPhase("p")()
	r.Trace("e", nil)
	r.SetTrace(&bytes.Buffer{})
	if r.Tracing() {
		t.Error("nil recorder reports tracing")
	}
	if got := r.Counter("x"); got != 0 {
		t.Errorf("nil Counter = %d", got)
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 {
		t.Errorf("nil Snapshot not empty: %+v", snap)
	}
}

func TestCountersGaugesPhases(t *testing.T) {
	r := New()
	r.Count("crowd/questions", 3)
	r.Count("crowd/questions", 4)
	r.Gauge("pivot/epsilon", 0.1)
	r.Gauge("pivot/epsilon", 0.2)
	done := r.StartPhase("prune")
	time.Sleep(time.Millisecond)
	done()
	done() // double-stop must not double-count

	if got := r.Counter("crowd/questions"); got != 7 {
		t.Errorf("counter = %d, want 7", got)
	}
	if got := r.GaugeValue("pivot/epsilon"); got != 0.2 {
		t.Errorf("gauge = %v, want 0.2", got)
	}
	snap := r.Snapshot()
	p := snap.Phases["prune"]
	if p.Count != 1 {
		t.Errorf("phase count = %d, want 1", p.Count)
	}
	if p.Total <= 0 || p.Mean != p.Total {
		t.Errorf("phase total/mean = %v/%v", p.Total, p.Mean)
	}
}

func TestHistogramSummary(t *testing.T) {
	r := New()
	for _, v := range []float64{1, 2, 3, 4, 100} {
		r.Observe("k", v)
	}
	h := r.Snapshot().Histograms["k"]
	if h.Count != 5 {
		t.Fatalf("count = %d", h.Count)
	}
	if h.Min != 1 || h.Max != 100 {
		t.Errorf("min/max = %v/%v", h.Min, h.Max)
	}
	if h.Mean != 22 {
		t.Errorf("mean = %v, want 22", h.Mean)
	}
	if h.P50 < 1 || h.P50 > 4 {
		t.Errorf("p50 = %v, want within [1, 4]", h.P50)
	}
	if h.P99 < 4 || h.P99 > 100 {
		t.Errorf("p99 = %v out of range", h.P99)
	}
}

func TestHistogramSingleSampleExactQuantiles(t *testing.T) {
	r := New()
	r.Observe("one", 42)
	h := r.Snapshot().Histograms["one"]
	if h.P50 != 42 || h.P99 != 42 {
		t.Errorf("quantiles of a single sample = %v/%v, want 42 (clamped)", h.P50, h.P99)
	}
}

func TestTraceJSONL(t *testing.T) {
	r := New()
	var buf bytes.Buffer
	r.SetTrace(&buf)
	if !r.Tracing() {
		t.Fatal("Tracing() = false after SetTrace")
	}
	r.Trace("pivot.round", map[string]any{"k": 3, "sum_w": 1})
	r.Trace("refine.batch", nil)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var ev Event
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if ev.Name != "pivot.round" || ev.Fields["k"] != float64(3) {
		t.Errorf("decoded event = %+v", ev)
	}
	r.SetTrace(nil)
	if r.Tracing() {
		t.Error("Tracing() = true after SetTrace(nil)")
	}
	r.Trace("dropped", nil)
	if strings.Count(buf.String(), "\n") != 2 {
		t.Error("event written after tracing disabled")
	}
}

func TestRenderText(t *testing.T) {
	r := New()
	r.Count("pruning/candidates", 12)
	r.Gauge("pruning/tau", 0.3)
	r.Observe("pivot/batch_k", 5)
	r.StartPhase("pruning")()
	var buf bytes.Buffer
	r.Snapshot().WriteText(&buf)
	out := buf.String()
	for _, want := range []string{"== metrics ==", "[pruning]", "pruning/candidates", "12", "[histograms]", "pivot/batch_k", "[phases]"} {
		if !strings.Contains(out, want) {
			t.Errorf("text render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderJSONRoundTrip(t *testing.T) {
	r := New()
	r.Count("a/b", 1)
	r.Observe("a/h", 2.5)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var m Metrics
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if m.Counters["a/b"] != 1 || m.Histograms["a/h"].Count != 1 {
		t.Errorf("round-tripped metrics = %+v", m)
	}
}

func TestMerge(t *testing.T) {
	a := New()
	a.Count("c", 2)
	a.Observe("h", 1)
	a.StartPhase("p")()
	b := New()
	b.Count("c", 3)
	b.Gauge("g", 9)
	b.Observe("h", 3)

	m := a.Snapshot().Merge(b.Snapshot())
	if m.Counters["c"] != 5 {
		t.Errorf("merged counter = %d, want 5", m.Counters["c"])
	}
	if m.Gauges["g"] != 9 {
		t.Errorf("merged gauge = %v", m.Gauges["g"])
	}
	h := m.Histograms["h"]
	if h.Count != 2 || h.Sum != 4 || h.Min != 1 || h.Max != 3 || h.Mean != 2 {
		t.Errorf("merged histogram = %+v", h)
	}
	if m.Phases["p"].Count != 1 {
		t.Errorf("merged phases = %+v", m.Phases)
	}
}

// TestConcurrentRecording is the subsystem's own race stress: many
// goroutines hammer the same counters, gauges, histograms, phase timers
// and trace sink while snapshots are taken concurrently. Run under
// -race in CI, it proves the Recorder needs no external locking.
func TestConcurrentRecording(t *testing.T) {
	r := New()
	var sink bytes.Buffer
	r.SetTrace(&sink)
	const goroutines = 16
	const perG = 500
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Count("shared/counter", 1)
				r.Gauge("shared/gauge", float64(i))
				r.Observe("shared/hist", float64(i%7))
				done := r.StartPhase("shared/phase")
				done()
				if i%100 == 0 {
					r.Trace("tick", map[string]any{"g": g, "i": i})
				}
				if i%250 == 0 {
					_ = r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("shared/counter"); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	snap := r.Snapshot()
	if snap.Histograms["shared/hist"].Count != goroutines*perG {
		t.Errorf("hist count = %d", snap.Histograms["shared/hist"].Count)
	}
	if snap.Phases["shared/phase"].Count != goroutines*perG {
		t.Errorf("phase count = %d", snap.Phases["shared/phase"].Count)
	}
	if got := strings.Count(sink.String(), "\n"); got != goroutines*(perG/100) {
		t.Errorf("trace lines = %d, want %d", got, goroutines*(perG/100))
	}
}
