// Package obs is the repository's observability layer: dependency-free,
// race-safe metrics and tracing threaded through every phase of the ACD
// pipeline. It exists because the paper's claims are quantitative —
// wasted pairs stay under ε·|P_k| (Equation 4, Lemma 3), refinement
// spends its budget T = N_m/x on the best benefit-cost ratios, every
// method is compared by crowdsourced pairs and iterations (Figures 5–8)
// — and a Recorder makes each of those quantities observable on any run
// rather than only in dedicated experiments.
//
// A Recorder holds four kinds of instruments, all safe for concurrent
// use and all nil-safe (methods on a nil *Recorder are no-ops, so
// instrumentation sites never guard):
//
//   - counters: monotonically increasing int64s (Count/Counter), e.g.
//     "crowd/questions_answered";
//   - gauges: last-write-wins float64s (Gauge/GaugeValue), e.g.
//     "pivot/epsilon";
//   - histograms: value distributions with count/sum/min/max and
//     quantile estimates (Observe), e.g. "pivot/batch_k";
//   - phases: wall-clock timers started with StartPhase and stopped by
//     the returned func, e.g. "pruning/verify".
//
// Snapshot returns an immutable Metrics view that renders as a text
// table (WriteText), JSON (WriteJSON), or merges with other snapshots
// (Merge). SetTrace attaches a JSONL event sink for per-round streams
// ("pivot.round", "refine.batch", "crowd.iteration"); Tracing lets hot
// paths skip payload construction when no sink is attached.
//
// Metric names are namespaced by pipeline phase ("pruning/", "pivot/",
// "refine/", "crowd/", "machine/"); the constants live next to the code
// that emits them (internal/blocking, internal/core, internal/refine,
// internal/crowd, internal/machine) and the README's metrics reference
// table documents them all in one place.
//
// CLIFlags gives every command the same observability surface
// (-metrics, -metrics-json, -trace, -metrics-http); the HTTP endpoint
// serves the live snapshot at /metrics and stdlib expvar at /debug/vars.
package obs
