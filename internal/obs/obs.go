package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Recorder collects a run's metrics: monotonically increasing counters,
// last-write-wins gauges, bucketed value histograms, and phase timers,
// plus an optional JSONL event sink (see trace.go). All methods are safe
// for concurrent use — counters and gauges are single atomic words, and
// histograms take a short per-histogram lock — so the parallel pruning
// workers and the async crowd driver can record without coordination.
//
// Every method is nil-safe: calling it on a nil *Recorder is a no-op.
// Instrumented code therefore never guards its recording sites; an
// uninstrumented run pays one nil check per event and nothing else.
type Recorder struct {
	mu       sync.RWMutex
	counters map[string]*atomic.Int64
	gauges   map[string]*atomic.Uint64 // math.Float64bits encoded
	hists    map[string]*histogram
	phases   map[string]*phase

	start time.Time
	sink  atomic.Pointer[traceSink]
}

// New creates an empty Recorder.
func New() *Recorder {
	return &Recorder{
		counters: make(map[string]*atomic.Int64),
		gauges:   make(map[string]*atomic.Uint64),
		hists:    make(map[string]*histogram),
		phases:   make(map[string]*phase),
		start:    time.Now(),
	}
}

// Count adds delta to the named counter, creating it at zero first.
func (r *Recorder) Count(name string, delta int64) {
	if r == nil {
		return
	}
	r.counter(name).Add(delta)
}

// Counter returns the current value of a counter (0 if never written).
func (r *Recorder) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c == nil {
		return 0
	}
	return c.Load()
}

// Gauge sets the named gauge to v (last write wins).
func (r *Recorder) Gauge(name string, v float64) {
	if r == nil {
		return
	}
	r.gauge(name).Store(math.Float64bits(v))
}

// GaugeValue returns the current value of a gauge (0 if never written).
func (r *Recorder) GaugeValue(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.Load())
}

// Observe records one sample into the named histogram.
func (r *Recorder) Observe(name string, v float64) {
	if r == nil {
		return
	}
	r.hist(name).observe(v)
}

// StartPhase starts (or resumes) a named phase timer and returns the
// function that stops it. Phases may nest and may run concurrently; each
// start/stop pair contributes its own elapsed time.
//
//	done := rec.StartPhase("pruning")
//	defer done()
func (r *Recorder) StartPhase(name string) func() {
	if r == nil {
		return func() {}
	}
	p := r.phase(name)
	t0 := time.Now()
	var once sync.Once
	return func() {
		once.Do(func() {
			p.count.Add(1)
			p.total.Add(int64(time.Since(t0)))
		})
	}
}

// counter returns (creating on first use) the named counter cell.
func (r *Recorder) counter(name string) *atomic.Int64 {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = new(atomic.Int64)
		r.counters[name] = c
	}
	return c
}

func (r *Recorder) gauge(name string) *atomic.Uint64 {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = new(atomic.Uint64)
		r.gauges[name] = g
	}
	return g
}

func (r *Recorder) hist(name string) *histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

func (r *Recorder) phase(name string) *phase {
	r.mu.RLock()
	p := r.phases[name]
	r.mu.RUnlock()
	if p != nil {
		return p
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if p = r.phases[name]; p == nil {
		p = new(phase)
		r.phases[name] = p
	}
	return p
}

// phase accumulates the wall-clock time and invocation count of one named
// pipeline phase.
type phase struct {
	count atomic.Int64
	total atomic.Int64 // nanoseconds
}

// numBuckets is the size of the histogram's exponential bucket array:
// bucket i covers values with binary exponent i-bucketBias, giving useful
// resolution from sub-microsecond durations up to billions.
const (
	numBuckets = 96
	bucketBias = 32
)

// histogram is a fixed-memory, power-of-two-bucketed summary: exact
// count/sum/min/max plus 96 exponential buckets for approximate
// quantiles. A single mutex guards it; observations are rare enough
// (thousands per run) that contention never shows.
type histogram struct {
	mu    sync.Mutex
	count int64
	sum   float64
	min   float64
	max   float64
	bkts  [numBuckets]int64
}

func newHistogram() *histogram {
	return &histogram{min: math.Inf(1), max: math.Inf(-1)}
}

// bucketOf maps a value to its exponential bucket index.
func bucketOf(v float64) int {
	if v <= 0 {
		return 0
	}
	_, exp := math.Frexp(v)
	i := exp + bucketBias
	if i < 0 {
		i = 0
	}
	if i >= numBuckets {
		i = numBuckets - 1
	}
	return i
}

// bucketMid returns a representative value (geometric midpoint) for a
// bucket, used by the quantile estimate.
func bucketMid(i int) float64 {
	if i == 0 {
		return 0
	}
	// Bucket i holds values in [2^(e-1), 2^e) with e = i - bucketBias.
	hi := math.Ldexp(1, i-bucketBias)
	return hi * 0.75
}

func (h *histogram) observe(v float64) {
	h.mu.Lock()
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.bkts[bucketOf(v)]++
	h.mu.Unlock()
}

// summary extracts a HistSummary under the histogram's lock.
func (h *histogram) summary() HistSummary {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistSummary{Count: h.count, Sum: h.sum}
	if h.count == 0 {
		return s
	}
	s.Min, s.Max = h.min, h.max
	s.Mean = h.sum / float64(h.count)
	q := func(frac float64) float64 {
		target := int64(math.Ceil(frac * float64(h.count)))
		if target < 1 {
			target = 1
		}
		seen := int64(0)
		for i, c := range h.bkts {
			seen += c
			if seen >= target {
				m := bucketMid(i)
				// Clamp the bucket estimate to the observed range so
				// single-sample and narrow histograms report exact values.
				if m < h.min {
					m = h.min
				}
				if m > h.max {
					m = h.max
				}
				return m
			}
		}
		return h.max
	}
	s.P50, s.P90, s.P99 = q(0.50), q(0.90), q(0.99)
	return s
}

// Snapshot captures a point-in-time, render-ready copy of every metric.
func (r *Recorder) Snapshot() Metrics {
	m := Metrics{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistSummary{},
		Phases:     map[string]PhaseSummary{},
	}
	if r == nil {
		return m
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		m.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		m.Gauges[name] = math.Float64frombits(g.Load())
	}
	for name, h := range r.hists {
		m.Histograms[name] = h.summary()
	}
	for name, p := range r.phases {
		total := time.Duration(p.total.Load())
		count := p.count.Load()
		ps := PhaseSummary{Count: count, Total: total}
		if count > 0 {
			ps.Mean = total / time.Duration(count)
		}
		m.Phases[name] = ps
	}
	return m
}

// Metrics is a Recorder snapshot: plain maps, safe to retain, marshal and
// render after the run has moved on.
type Metrics struct {
	// Counters holds the final counter values.
	Counters map[string]int64 `json:"counters,omitempty"`
	// Gauges holds the last value written to each gauge.
	Gauges map[string]float64 `json:"gauges,omitempty"`
	// Histograms summarizes each value distribution.
	Histograms map[string]HistSummary `json:"histograms,omitempty"`
	// Phases reports wall-clock accounting per pipeline phase.
	Phases map[string]PhaseSummary `json:"phases,omitempty"`
}

// HistSummary is the render-ready digest of one histogram. Quantiles are
// approximate (power-of-two bucket midpoints clamped to [Min, Max]);
// Count, Sum, Min, Max and Mean are exact.
type HistSummary struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// PhaseSummary is the wall-clock accounting of one phase timer.
type PhaseSummary struct {
	Count int64         `json:"count"`
	Total time.Duration `json:"total_ns"`
	Mean  time.Duration `json:"mean_ns"`
}

// Merge folds other's metrics into m: counters add, gauges take other's
// value, phases add, histograms combine their exact moments (quantiles of
// merged histograms are recomputed from the coarser of the two digests,
// so Merge keeps them only approximately). Used by drivers that aggregate
// per-run snapshots into one report.
func (m Metrics) Merge(other Metrics) Metrics {
	for k, v := range other.Counters {
		m.Counters[k] += v
	}
	for k, v := range other.Gauges {
		m.Gauges[k] = v
	}
	for k, v := range other.Histograms {
		cur, ok := m.Histograms[k]
		if !ok {
			m.Histograms[k] = v
			continue
		}
		merged := HistSummary{
			Count: cur.Count + v.Count,
			Sum:   cur.Sum + v.Sum,
			Min:   math.Min(cur.Min, v.Min),
			Max:   math.Max(cur.Max, v.Max),
		}
		if cur.Count == 0 {
			merged.Min, merged.Max = v.Min, v.Max
		} else if v.Count == 0 {
			merged.Min, merged.Max = cur.Min, cur.Max
		}
		if merged.Count > 0 {
			merged.Mean = merged.Sum / float64(merged.Count)
		}
		// Weighted blend keeps the quantiles in a sane range without the
		// raw buckets.
		tw := float64(cur.Count + v.Count)
		if tw > 0 {
			blend := func(a, b float64) float64 {
				return (a*float64(cur.Count) + b*float64(v.Count)) / tw
			}
			merged.P50 = blend(cur.P50, v.P50)
			merged.P90 = blend(cur.P90, v.P90)
			merged.P99 = blend(cur.P99, v.P99)
		}
		m.Histograms[k] = merged
	}
	for k, v := range other.Phases {
		cur := m.Phases[k]
		cur.Count += v.Count
		cur.Total += v.Total
		if cur.Count > 0 {
			cur.Mean = cur.Total / time.Duration(cur.Count)
		}
		m.Phases[k] = cur
	}
	return m
}

// sortedKeys returns the keys of a string-keyed map in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
