package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// traceSink serializes trace events to one writer. A single mutex orders
// concurrent emitters; each event is one JSON object per line (JSONL), so
// sinks can be tailed, grepped, and replayed without a framing parser.
type traceSink struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// SetTrace directs trace events to w as JSON lines. A nil w disables
// tracing (the initial state). The recorder does not buffer or close w;
// callers own its lifecycle.
func (r *Recorder) SetTrace(w io.Writer) {
	if r == nil {
		return
	}
	if w == nil {
		r.sink.Store(nil)
		return
	}
	r.sink.Store(&traceSink{enc: json.NewEncoder(w)})
}

// Tracing reports whether a trace writer is attached, so callers can skip
// building expensive event payloads when no one is listening.
func (r *Recorder) Tracing() bool {
	return r != nil && r.sink.Load() != nil
}

// Event is one decoded trace line, as written by Trace: the elapsed time
// since the recorder was created, the event name, and the emitter's
// fields. Tests and offline analyzers unmarshal sink contents into it.
type Event struct {
	// ElapsedMS is milliseconds since Recorder creation.
	ElapsedMS float64 `json:"elapsed_ms"`
	// Name identifies the event (e.g. "pivot.round").
	Name string `json:"event"`
	// Fields carries the event payload.
	Fields map[string]any `json:"fields,omitempty"`
}

// Trace emits one event to the attached sink (no-op without one). fields
// may be nil. Events carry a relative timestamp — elapsed time since the
// recorder was created — so two runs of the same seed diff cleanly except
// for the timings themselves.
func (r *Recorder) Trace(name string, fields map[string]any) {
	if r == nil {
		return
	}
	s := r.sink.Load()
	if s == nil {
		return
	}
	ev := Event{
		ElapsedMS: float64(time.Since(r.start)) / float64(time.Millisecond),
		Name:      name,
		Fields:    fields,
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Encoding errors (closed file, full disk) are deliberately dropped:
	// tracing is diagnostics, never control flow.
	_ = s.enc.Encode(ev)
}
