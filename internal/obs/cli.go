package obs

import (
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sync"
)

// CLIFlags bundles the observability command-line surface the cmd/ tools
// share: -metrics (text snapshot), -metrics-json (JSON snapshot),
// -trace FILE (JSONL event sink) and -metrics-http ADDR (expvar + JSON
// snapshot over HTTP while the run is in flight). Register the flags,
// call Activate once a Recorder exists, and Finish when the run is done.
type CLIFlags struct {
	// Metrics requests the text snapshot at the end of the run.
	Metrics bool
	// JSON requests the snapshot as JSON instead of a text table.
	JSON bool
	// TraceFile is the path of the JSONL trace sink ("" = no tracing,
	// "-" = stderr).
	TraceFile string
	// HTTPAddr is the listen address of the in-run metrics endpoint
	// ("" = disabled). Serves /metrics (JSON snapshot) and expvar's
	// /debug/vars.
	HTTPAddr string

	rec       *Recorder
	traceFile *os.File
	listener  net.Listener
}

// RegisterFlags installs the shared observability flags on a FlagSet and
// returns the struct their values land in.
func RegisterFlags(fs *flag.FlagSet) *CLIFlags {
	c := &CLIFlags{}
	fs.BoolVar(&c.Metrics, "metrics", false, "print a metrics snapshot (per-phase counters, histograms, timers) after the run")
	fs.BoolVar(&c.JSON, "metrics-json", false, "with -metrics, print the snapshot as JSON instead of a text table")
	fs.StringVar(&c.TraceFile, "trace", "", "append JSONL trace events (pivot rounds, refine batches, crowd iterations) to this file; \"-\" for stderr")
	fs.StringVar(&c.HTTPAddr, "metrics-http", "", "serve live metrics over HTTP at this address while the run executes (/metrics and /debug/vars)")
	return c
}

// Enabled reports whether any observability output was requested.
func (c *CLIFlags) Enabled() bool {
	return c.Metrics || c.JSON || c.TraceFile != "" || c.HTTPAddr != ""
}

// Activate wires the flags to a recorder: opens the trace sink and starts
// the HTTP endpoint as requested. It returns an error (and activates
// nothing) if the trace file cannot be created or the address cannot be
// bound.
func (c *CLIFlags) Activate(rec *Recorder, stderr io.Writer) error {
	c.rec = rec
	switch c.TraceFile {
	case "":
	case "-":
		rec.SetTrace(stderr)
	default:
		f, err := os.Create(c.TraceFile)
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		c.traceFile = f
		rec.SetTrace(f)
	}
	if c.HTTPAddr != "" {
		ln, err := net.Listen("tcp", c.HTTPAddr)
		if err != nil {
			if c.traceFile != nil {
				c.traceFile.Close()
			}
			return fmt.Errorf("metrics-http: %w", err)
		}
		c.listener = ln
		mux := http.NewServeMux()
		mux.Handle("/metrics", rec)
		mux.Handle("/debug/vars", expvar.Handler())
		go http.Serve(ln, mux) //nolint:errcheck — dies with the process
		fmt.Fprintf(stderr, "metrics: serving on http://%s/metrics\n", ln.Addr())
	}
	return nil
}

// Finish renders the snapshot as requested, closes the trace sink, and
// stops the HTTP endpoint. Safe to call when nothing was activated.
func (c *CLIFlags) Finish(out io.Writer) {
	if c.rec != nil && (c.Metrics || c.JSON) {
		snap := c.rec.Snapshot()
		if c.JSON {
			snap.WriteJSON(out) //nolint:errcheck — best-effort CLI output
		} else {
			snap.WriteText(out)
		}
	}
	if c.traceFile != nil {
		c.traceFile.Close()
		c.traceFile = nil
	}
	if c.listener != nil {
		c.listener.Close()
		c.listener = nil
	}
}

// ServeHTTP implements http.Handler: the current snapshot as JSON. This
// is the /metrics endpoint of -metrics-http.
func (r *Recorder) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	r.Snapshot().WriteJSON(w) //nolint:errcheck — client went away
}

// publishMu serializes PublishExpvar against expvar's global registry.
var publishMu sync.Mutex

// PublishExpvar exposes the recorder under the given name in the
// process-wide expvar registry (visible at /debug/vars). Re-publishing a
// name replaces nothing — expvar registrations are permanent — so a
// second call with a name that is already taken is a no-op rather than
// the panic expvar.Publish raises.
func (r *Recorder) PublishExpvar(name string) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
