package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// WriteJSON writes the snapshot as one indented JSON document.
func (m Metrics) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// WriteText renders the snapshot as a fixed-width table, grouped by the
// metric name's prefix (the segment before the first '/'): counters and
// gauges first, then histograms, then phase timers. The format is meant
// for eyeballs and for line-oriented tools (grep "pivot/"), not for
// machines — machines get WriteJSON.
func (m Metrics) WriteText(w io.Writer) {
	fmt.Fprintln(w, "== metrics ==")
	groups := map[string][]string{}
	for name := range m.Counters {
		g := prefixOf(name)
		groups[g] = append(groups[g], name)
	}
	for name := range m.Gauges {
		g := prefixOf(name)
		groups[g] = append(groups[g], name)
	}
	for _, g := range sortedKeys(groups) {
		fmt.Fprintf(w, "[%s]\n", g)
		names := groups[g]
		sort.Strings(names)
		for _, name := range names {
			if v, ok := m.Counters[name]; ok {
				fmt.Fprintf(w, "  %-42s %12d\n", name, v)
			} else {
				fmt.Fprintf(w, "  %-42s %12.4g\n", name, m.Gauges[name])
			}
		}
	}
	if len(m.Histograms) > 0 {
		fmt.Fprintln(w, "[histograms]")
		for _, name := range sortedKeys(m.Histograms) {
			h := m.Histograms[name]
			fmt.Fprintf(w, "  %-42s n=%-8d mean=%-10.4g p50=%-10.4g p99=%-10.4g max=%.4g\n",
				name, h.Count, h.Mean, h.P50, h.P99, h.Max)
		}
	}
	if len(m.Phases) > 0 {
		fmt.Fprintln(w, "[phases]")
		for _, name := range sortedKeys(m.Phases) {
			p := m.Phases[name]
			fmt.Fprintf(w, "  %-42s n=%-8d total=%-12s mean=%s\n",
				name, p.Count, roundDuration(p.Total), roundDuration(p.Mean))
		}
	}
}

// prefixOf returns a metric's group: the name up to the first '/', or the
// whole name when it has no slash.
func prefixOf(name string) string {
	if i := strings.IndexByte(name, '/'); i >= 0 {
		return name[:i]
	}
	return name
}

// roundDuration trims durations to a readable precision.
func roundDuration(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(time.Microsecond)
	default:
		return d
	}
}
