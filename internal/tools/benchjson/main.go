// Command benchjson converts benchmark measurements into the repo's
// committed benchmark-trajectory files (BENCH_N.json). It understands
// two record shapes, both stored in the shared internal/benchfmt
// document schema:
//
//   - `go test -bench` output on stdin, merged under a label:
//
//     go test -run NONE -bench ... -benchmem . | go run ./internal/tools/benchjson -label pre -out BENCH_3.json
//     ... optimize ...
//     go test -run NONE -bench ... -benchmem . | go run ./internal/tools/benchjson -label post -out BENCH_3.json
//     go run ./internal/tools/benchjson -compare BENCH_3.json
//
//   - acdload suite reports (scenario runs with per-endpoint throughput
//     and latency percentiles), merged under each report's own
//     "<scenario>-<N>shard" label:
//
//     go run ./cmd/acdload -scenario all -out suite.json
//     go run ./internal/tools/benchjson -load -out BENCH_7.json suite.json
//
// With -count > 1 the repeated runs of each benchmark are averaged and
// the sample count recorded. -compare prints a markdown before/after
// table (ns/op, B/op, allocs/op, speedup) from an existing file.
package main

import (
	"flag"
	"fmt"
	"os"

	"acd/internal/benchfmt"
	"acd/internal/load"
)

func main() {
	label := flag.String("label", "", "label to store parsed go-bench results under (e.g. pre, post)")
	out := flag.String("out", "", "JSON file to merge results into")
	compare := flag.String("compare", "", "print a markdown pre/post table from an existing JSON file and exit")
	loadMode := flag.Bool("load", false, "positional args are acdload suite files; merge their reports into -out")
	flag.Parse()

	if err := run(*label, *out, *compare, *loadMode, flag.Args()); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// run dispatches the three modes; see the package comment.
func run(label, out, compare string, loadMode bool, args []string) error {
	switch {
	case compare != "":
		return benchfmt.Compare(compare, os.Stdout)
	case loadMode:
		if out == "" {
			return fmt.Errorf("-load requires -out")
		}
		if len(args) == 0 {
			return fmt.Errorf("-load requires at least one suite file argument")
		}
		doc, err := benchfmt.Read(out)
		if err != nil {
			return err
		}
		merged := 0
		for _, path := range args {
			suite, err := load.ReadSuite(path)
			if err != nil {
				return err
			}
			suite.MergeInto(doc)
			merged += len(suite.Reports)
		}
		if err := doc.Write(out); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "benchjson: merged %d scenario reports from %d suites into %s\n", merged, len(args), out)
		return nil
	default:
		if label == "" || out == "" {
			return fmt.Errorf("-label and -out are required (or use -compare FILE / -load SUITE...)")
		}
		results, err := benchfmt.ParseGoBench(os.Stdin)
		if err != nil {
			return err
		}
		if len(results) == 0 {
			return fmt.Errorf("no benchmark lines on stdin")
		}
		doc, err := benchfmt.Read(out)
		if err != nil {
			return err
		}
		doc.Set(label, results)
		if err := doc.Write(out); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d results under label %q to %s\n", len(results), label, out)
		return nil
	}
}
