// Command benchjson converts `go test -bench` output into the repo's
// committed benchmark-trajectory files (BENCH_N.json).
//
// It reads benchmark output on stdin and merges the parsed results into
// a JSON document under the given label, so the pre- and
// post-optimization numbers of one PR live side by side in one file:
//
//	go test -run NONE -bench ... -benchmem . | go run ./internal/tools/benchjson -label pre -out BENCH_3.json
//	... optimize ...
//	go test -run NONE -bench ... -benchmem . | go run ./internal/tools/benchjson -label post -out BENCH_3.json
//	go run ./internal/tools/benchjson -compare BENCH_3.json
//
// With -count > 1 the repeated runs of each benchmark are averaged and
// the sample count recorded. -compare prints a markdown before/after
// table (ns/op, B/op, allocs/op, speedup) from an existing file.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's averaged measurements.
type Result struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Samples is how many runs were averaged (the -count value).
	Samples int `json:"samples"`
	// NsPerOp, BytesPerOp and AllocsPerOp are the standard testing
	// measurements (B/op and allocs/op require -benchmem).
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics holds any extra b.ReportMetric series (unit -> value).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Document is the schema of a BENCH_N.json file: one result list per
// label ("pre", "post", ...), plus the recording environment.
type Document struct {
	// Go is the toolchain that produced the numbers.
	Go string `json:"go"`
	// GOMAXPROCS is the parallelism the benchmarks ran with.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Labels maps a label to its benchmark results.
	Labels map[string][]Result `json:"labels"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

func main() {
	label := flag.String("label", "", "label to store the parsed results under (e.g. pre, post)")
	out := flag.String("out", "", "JSON file to merge results into")
	compare := flag.String("compare", "", "print a markdown pre/post table from an existing JSON file and exit")
	flag.Parse()

	if *compare != "" {
		if err := printComparison(*compare, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *label == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -label and -out are required (or use -compare FILE)")
		os.Exit(2)
	}
	results, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	doc := &Document{Labels: map[string][]Result{}}
	if raw, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(raw, doc); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: corrupt %s: %v\n", *out, err)
			os.Exit(1)
		}
	}
	doc.Go = runtime.Version()
	doc.GOMAXPROCS = runtime.GOMAXPROCS(0)
	if doc.Labels == nil {
		doc.Labels = map[string][]Result{}
	}
	doc.Labels[*label] = results
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results under label %q to %s\n", len(results), *label, *out)
}

// parse reads benchmark output and returns per-name averaged results in
// first-seen order.
func parse(r *os.File) ([]Result, error) {
	type acc struct {
		Result
		order int
	}
	byName := map[string]*acc{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := m[1]
		a, ok := byName[name]
		if !ok {
			a = &acc{Result: Result{Name: name}, order: len(byName)}
			byName[name] = a
		}
		a.Samples++
		// The tail is a sequence of "<value> <unit>" measurement pairs.
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad value %q", sc.Text(), fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				a.NsPerOp += v
			case "B/op":
				a.BytesPerOp += v
			case "allocs/op":
				a.AllocsPerOp += v
			default:
				if a.Metrics == nil {
					a.Metrics = map[string]float64{}
				}
				a.Metrics[unit] += v
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	accs := make([]*acc, 0, len(byName))
	for _, a := range byName {
		accs = append(accs, a)
	}
	sort.Slice(accs, func(i, j int) bool { return accs[i].order < accs[j].order })
	out := make([]Result, 0, len(accs))
	for _, a := range accs {
		n := float64(a.Samples)
		a.NsPerOp /= n
		a.BytesPerOp /= n
		a.AllocsPerOp /= n
		for k := range a.Metrics {
			a.Metrics[k] /= n
		}
		out = append(out, a.Result)
	}
	return out, nil
}

// printComparison renders the pre/post labels of a document as a
// markdown table with speedup and allocation-reduction ratios.
func printComparison(path string, w *os.File) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc Document
	if err := json.Unmarshal(raw, &doc); err != nil {
		return err
	}
	pre, post := doc.Labels["pre"], doc.Labels["post"]
	if pre == nil || post == nil {
		return fmt.Errorf("%s: need both \"pre\" and \"post\" labels", path)
	}
	postBy := make(map[string]Result, len(post))
	for _, r := range post {
		postBy[r.Name] = r
	}
	fmt.Fprintln(w, "| benchmark | ns/op (pre) | ns/op (post) | speedup | allocs/op (pre) | allocs/op (post) | alloc reduction |")
	fmt.Fprintln(w, "|---|---|---|---|---|---|---|")
	for _, p := range pre {
		q, ok := postBy[p.Name]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "| %s | %.0f | %.0f | %.2fx | %.0f | %.0f | %.1fx |\n",
			strings.TrimPrefix(p.Name, "Benchmark"),
			p.NsPerOp, q.NsPerOp, ratio(p.NsPerOp, q.NsPerOp),
			p.AllocsPerOp, q.AllocsPerOp, ratio(p.AllocsPerOp, q.AllocsPerOp))
	}
	return nil
}

// ratio returns a/b guarded against division by zero.
func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
