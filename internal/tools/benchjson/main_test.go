package main

import (
	"path/filepath"
	"testing"
	"time"

	"acd/internal/benchfmt"
	"acd/internal/load"
)

// TestLoadMode: an acdload suite file round-trips through `-load` into
// the shared document schema, alongside go-bench labels already in the
// file.
func TestLoadMode(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH.json")

	// Pre-existing go-bench label, as committed BENCH files have.
	doc := &benchfmt.Document{}
	doc.Set("pre", []benchfmt.Result{{Name: "BenchmarkResolve", Samples: 1, NsPerOp: 1000}})
	if err := doc.Write(out); err != nil {
		t.Fatal(err)
	}

	suite := &load.Suite{Reports: []*load.Report{{
		Scenario: "baseline",
		Shards:   4,
		Measured: time.Second,
		Endpoints: map[string]load.EndpointStats{
			load.EndpointRecords: {Ops: 10, Throughput: 10, P50: 1, P99: 2, Mean: 1.2},
		},
	}}}
	spath := filepath.Join(dir, "suite.json")
	if err := load.WriteSuite(spath, suite); err != nil {
		t.Fatal(err)
	}

	if err := run("", out, "", true, []string{spath}); err != nil {
		t.Fatal(err)
	}
	back, err := benchfmt.Read(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Labels["pre"]) != 1 {
		t.Errorf("-load clobbered the existing go-bench label: %+v", back.Labels)
	}
	rs := back.Labels["baseline-4shard"]
	if len(rs) != 1 || rs[0].Name != "Load/baseline/records" || rs[0].Metrics["ops/s"] != 10 {
		t.Errorf("suite not merged: %+v", rs)
	}
}

// TestLoadModeErrors: missing flags and unreadable suites fail cleanly.
func TestLoadModeErrors(t *testing.T) {
	if err := run("", "", "", true, []string{"x"}); err == nil {
		t.Error("-load without -out accepted")
	}
	if err := run("", "out.json", "", true, nil); err == nil {
		t.Error("-load without suite files accepted")
	}
	if err := run("", filepath.Join(t.TempDir(), "o.json"), "", true, []string{"/nonexistent.json"}); err == nil {
		t.Error("unreadable suite accepted")
	}
	if err := run("", "", "", false, nil); err == nil {
		t.Error("missing -label/-out accepted")
	}
}
