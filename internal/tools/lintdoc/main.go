// Command lintdoc enforces the repository's documentation bar: every
// exported top-level symbol (function, method, type, and ungrouped
// var/const) must carry a doc comment, so `go doc` stays a complete
// paper-to-code index. It uses only go/ast — no external linters.
//
// Usage:
//
//	go run ./internal/tools/lintdoc [dir ...]   (default: .)
//
// Directories are walked recursively; _test.go files and testdata/ are
// skipped. Exit status 1 when any violation is found.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	bad := 0
	for _, root := range roots {
		violations, err := lintTree(root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lintdoc: %v\n", err)
			os.Exit(2)
		}
		for _, v := range violations {
			fmt.Println(v)
		}
		bad += len(violations)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "lintdoc: %d exported symbol(s) without doc comments\n", bad)
		os.Exit(1)
	}
}

// lintTree walks a directory tree and lints every non-test Go file.
func lintTree(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") && name != "." {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		vs, err := lintFile(path)
		if err != nil {
			return err
		}
		out = append(out, vs...)
		return nil
	})
	return out, err
}

// lintFile reports the undocumented exported symbols of one file.
func lintFile(path string) ([]string, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil && exportedRecv(d) {
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				report(d.Pos(), kind, d.Name.Name)
			}
		case *ast.GenDecl:
			lintGenDecl(d, report)
		}
	}
	return out, nil
}

// exportedRecv reports whether a FuncDecl is a plain function or a
// method on an exported receiver type; methods on unexported types are
// invisible in go doc and exempt.
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}

// lintGenDecl handles type/var/const declarations. A doc comment on the
// group covers every spec in it (the idiomatic form for const blocks);
// otherwise each exported spec needs its own.
func lintGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	if d.Doc != nil {
		return
	}
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
				report(s.Pos(), "type", s.Name.Name)
			}
		case *ast.ValueSpec:
			if s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, n := range s.Names {
				if n.IsExported() {
					report(n.Pos(), d.Tok.String(), n.Name)
				}
			}
		}
	}
}
