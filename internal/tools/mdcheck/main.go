// Command mdcheck verifies that every relative link in the given
// markdown files points at a file or directory that exists, so the
// repository's documentation never rots silently. External links
// (http/https/mailto) and pure in-page anchors are skipped — checking
// them would need the network or a markdown heading parser, and the
// failure mode this tool guards against is renamed/deleted repo files.
//
// Usage:
//
//	go run ./internal/tools/mdcheck README.md DESIGN.md ...
//
// Exit status 1 when any link is broken.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links [text](target). Images
// ![alt](target) match too via the optional bang.
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: mdcheck FILE.md ...")
		os.Exit(2)
	}
	broken := 0
	for _, file := range os.Args[1:] {
		data, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mdcheck: %v\n", err)
			os.Exit(2)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if skippable(target) {
					continue
				}
				target = strings.SplitN(target, "#", 2)[0]
				if target == "" {
					continue
				}
				resolved := filepath.Join(filepath.Dir(file), target)
				if _, err := os.Stat(resolved); err != nil {
					fmt.Printf("%s:%d: broken link %q (%s does not exist)\n", file, i+1, m[1], resolved)
					broken++
				}
			}
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "mdcheck: %d broken link(s)\n", broken)
		os.Exit(1)
	}
}

// skippable reports whether a link target is outside this tool's remit:
// external URLs and in-page anchors.
func skippable(target string) bool {
	return strings.HasPrefix(target, "http://") ||
		strings.HasPrefix(target, "https://") ||
		strings.HasPrefix(target, "mailto:") ||
		strings.HasPrefix(target, "#")
}
