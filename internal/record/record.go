package record

import (
	"fmt"
	"sort"
	"strings"
)

// ID identifies a record within a dataset. IDs are dense: a dataset of n
// records uses IDs 0..n-1.
type ID int

// Record is a single record to be deduplicated. Fields hold the raw
// attribute values (e.g. "title", "authors" for a citation record).
// Entity is the ground-truth entity identifier when known (-1 otherwise);
// it is used only by the crowd simulator and by evaluation code, never by
// the deduplication algorithms themselves.
type Record struct {
	ID     ID
	Fields map[string]string
	Entity int
}

// New returns a record with the given ID and fields and no ground truth.
func New(id ID, fields map[string]string) Record {
	return Record{ID: id, Fields: fields, Entity: -1}
}

// Text concatenates all field values in a deterministic (sorted-key)
// order. It is the canonical string form fed to tokenizers and
// character-level similarity metrics.
func (r Record) Text() string {
	if len(r.Fields) == 0 {
		return ""
	}
	keys := make([]string, 0, len(r.Fields))
	for k := range r.Fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		if v := r.Fields[k]; v != "" {
			parts = append(parts, v)
		}
	}
	return strings.Join(parts, " ")
}

// Field returns the value of the named field, or "" if absent.
func (r Record) Field(name string) string { return r.Fields[name] }

// String implements fmt.Stringer for debugging output.
func (r Record) String() string {
	return fmt.Sprintf("record %d: %s", r.ID, r.Text())
}

// Pair identifies an unordered pair of records. The canonical form has
// Lo < Hi; construct pairs with MakePair to maintain that invariant.
type Pair struct {
	Lo, Hi ID
}

// MakePair returns the canonical (Lo < Hi) pair for two distinct IDs.
// It panics if a == b, since a record is never paired with itself.
func MakePair(a, b ID) Pair {
	switch {
	case a < b:
		return Pair{Lo: a, Hi: b}
	case b < a:
		return Pair{Lo: b, Hi: a}
	default:
		panic(fmt.Sprintf("record: self-pair (%d, %d)", a, b))
	}
}

// Other returns the pair member that is not id. It panics if id is not a
// member of the pair.
func (p Pair) Other(id ID) ID {
	switch id {
	case p.Lo:
		return p.Hi
	case p.Hi:
		return p.Lo
	default:
		panic(fmt.Sprintf("record: %d not in pair (%d, %d)", id, p.Lo, p.Hi))
	}
}

// String implements fmt.Stringer.
func (p Pair) String() string { return fmt.Sprintf("(%d,%d)", p.Lo, p.Hi) }

// Normalize lowercases s and collapses every run of non-alphanumeric
// characters to a single space. It is the shared preprocessing step for
// tokenization and phonetic keying.
func Normalize(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	space := true // suppress leading space
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z' || c >= '0' && c <= '9':
			b.WriteRune(c)
			space = false
		case c >= 'A' && c <= 'Z':
			b.WriteRune(c - 'A' + 'a')
			space = false
		default:
			if !space {
				b.WriteByte(' ')
				space = true
			}
		}
	}
	return strings.TrimRight(b.String(), " ")
}

// Tokens splits s into normalized tokens.
func Tokens(s string) []string {
	n := Normalize(s)
	if n == "" {
		return nil
	}
	return strings.Split(n, " ")
}

// TokenSet returns the distinct normalized tokens of s.
func TokenSet(s string) map[string]struct{} {
	set := make(map[string]struct{})
	for _, t := range Tokens(s) {
		set[t] = struct{}{}
	}
	return set
}

// SortedTokens returns the distinct normalized tokens of s in sorted
// order. Sorted token slices are the representation used by the prefix
// filter in the blocking package and by sorted-neighborhood keying.
func SortedTokens(s string) []string {
	set := TokenSet(s)
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
