package record

import (
	"sort"
	"strings"
	"testing"
)

// FuzzTokenization checks the normalization/tokenization pipeline on
// arbitrary input: no panics, normalization is idempotent and emits only
// lowercase alphanumerics and single spaces, and the three token views
// (Tokens, TokenSet, SortedTokens) stay consistent with each other.
func FuzzTokenization(f *testing.F) {
	for _, s := range []string{
		"",
		"hello world",
		"  Doubled   spaces\tand\ttabs  ",
		"MiXeD CaSe 123",
		"punct!@#$%^&*()uation",
		"héllo wörld ünïcode",
		"日本語のテスト",
		"a-b_c.d,e;f",
		"\x00\xff invalid \xfe utf8",
		strings.Repeat("long ", 50),
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		n := Normalize(s)
		if Normalize(n) != n {
			t.Fatalf("Normalize not idempotent on %q: %q -> %q", s, n, Normalize(n))
		}
		prevSpace := true // doubles as a leading-space check
		for i := 0; i < len(n); i++ {
			c := n[i]
			switch {
			case c >= 'a' && c <= 'z' || c >= '0' && c <= '9':
				prevSpace = false
			case c == ' ':
				if prevSpace {
					t.Fatalf("Normalize(%q) = %q has a doubled or leading space", s, n)
				}
				prevSpace = true
			default:
				t.Fatalf("Normalize(%q) = %q contains byte %q", s, n, c)
			}
		}
		if strings.HasSuffix(n, " ") {
			t.Fatalf("Normalize(%q) = %q has a trailing space", s, n)
		}

		toks := Tokens(s)
		for _, tok := range toks {
			if tok == "" {
				t.Fatalf("Tokens(%q) contains an empty token: %q", s, toks)
			}
			if Normalize(tok) != tok {
				t.Fatalf("Tokens(%q) token %q is not normalized", s, tok)
			}
		}
		if n == "" && len(toks) != 0 {
			t.Fatalf("empty normalization but %d tokens", len(toks))
		}

		set := TokenSet(s)
		sorted := SortedTokens(s)
		if len(set) != len(sorted) {
			t.Fatalf("TokenSet has %d tokens, SortedTokens %d", len(set), len(sorted))
		}
		if !sort.StringsAreSorted(sorted) {
			t.Fatalf("SortedTokens(%q) not sorted: %q", s, sorted)
		}
		for i, tok := range sorted {
			if i > 0 && sorted[i-1] == tok {
				t.Fatalf("SortedTokens(%q) has duplicate %q", s, tok)
			}
			if _, ok := set[tok]; !ok {
				t.Fatalf("SortedTokens(%q) token %q missing from TokenSet", s, tok)
			}
		}
		for _, tok := range toks {
			if _, ok := set[tok]; !ok {
				t.Fatalf("Tokens(%q) token %q missing from TokenSet", s, tok)
			}
		}
	})
}
