package record

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"Hello, World!", "hello world"},
		{"  A--B__C  ", "a b c"},
		{"Chevrolet", "chevrolet"},
		{"ABC123", "abc123"},
		{"!!!", ""},
		{"a", "a"},
		{"Déjà vu", "d j vu"}, // non-ASCII letters are treated as separators
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTokens(t *testing.T) {
	got := Tokens("The Quick, quick brown Fox")
	want := []string{"the", "quick", "quick", "brown", "fox"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokens = %v, want %v", got, want)
	}
	if Tokens("") != nil {
		t.Errorf("Tokens(\"\") should be nil")
	}
	if Tokens("!!") != nil {
		t.Errorf("Tokens(\"!!\") should be nil")
	}
}

func TestTokenSetAndSortedTokens(t *testing.T) {
	set := TokenSet("b a b c")
	if len(set) != 3 {
		t.Fatalf("TokenSet size = %d, want 3", len(set))
	}
	sorted := SortedTokens("b a b c")
	want := []string{"a", "b", "c"}
	if !reflect.DeepEqual(sorted, want) {
		t.Errorf("SortedTokens = %v, want %v", sorted, want)
	}
}

func TestRecordText(t *testing.T) {
	r := New(3, map[string]string{"name": "Fuji", "city": "Tokyo", "empty": ""})
	// Keys sorted: city, empty (skipped), name.
	if got, want := r.Text(), "Tokyo Fuji"; got != want {
		t.Errorf("Text = %q, want %q", got, want)
	}
	if r.Entity != -1 {
		t.Errorf("New record Entity = %d, want -1", r.Entity)
	}
	if r.Field("city") != "Tokyo" || r.Field("missing") != "" {
		t.Errorf("Field lookup wrong")
	}
	var empty Record
	if empty.Text() != "" {
		t.Errorf("empty record Text = %q, want \"\"", empty.Text())
	}
}

func TestMakePair(t *testing.T) {
	p := MakePair(7, 2)
	if p.Lo != 2 || p.Hi != 7 {
		t.Errorf("MakePair(7,2) = %v, want (2,7)", p)
	}
	if MakePair(2, 7) != p {
		t.Errorf("MakePair not symmetric")
	}
	if p.Other(2) != 7 || p.Other(7) != 2 {
		t.Errorf("Other lookup wrong")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("MakePair(5,5) should panic")
		}
	}()
	MakePair(5, 5)
}

func TestPairOtherPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("Other on non-member should panic")
		}
	}()
	MakePair(1, 2).Other(3)
}

func TestPairString(t *testing.T) {
	if got := MakePair(4, 1).String(); got != "(1,4)" {
		t.Errorf("Pair.String = %q", got)
	}
}

// Property: MakePair is symmetric and canonical for arbitrary distinct IDs.
func TestMakePairProperty(t *testing.T) {
	f := func(a, b int16) bool {
		x, y := ID(a), ID(b)
		if x == y {
			return true
		}
		p, q := MakePair(x, y), MakePair(y, x)
		return p == q && p.Lo < p.Hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Normalize is idempotent and its output tokens are sorted-safe
// (normalizing a normalized string changes nothing).
func TestNormalizeIdempotent(t *testing.T) {
	f := func(s string) bool {
		n := Normalize(s)
		return Normalize(n) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: SortedTokens output is sorted and duplicate-free.
func TestSortedTokensProperty(t *testing.T) {
	f := func(s string) bool {
		toks := SortedTokens(s)
		if !sort.StringsAreSorted(toks) {
			return false
		}
		for i := 1; i < len(toks); i++ {
			if toks[i] == toks[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
