// Package record defines the record model used throughout the ACD
// reproduction: records to be deduplicated, pair identifiers, and the
// normalization and tokenization primitives that the similarity metrics
// and the pruning phase build on.
//
// A Record is a flat bag of named string fields plus a stable integer ID.
// IDs are assigned densely (0..n-1) within a dataset so that downstream
// structures (pair graphs, union-find, clusterings) can use slice-indexed
// storage instead of maps. A Pair is the canonical (lo, hi) form of an
// unordered record pair — the (r_i, r_j) the paper's equations range
// over — built with MakePair so every layer agrees on pair identity.
package record
