package quality

import (
	"math"
	"sort"

	"acd/internal/crowd"
	"acd/internal/record"
)

// Model is the fitted worker/answer model.
type Model struct {
	// Posterior is P(duplicate | votes) for every voted-on pair; use it
	// as the crowd score f_c.
	Posterior map[record.Pair]float64
	// TruePositiveRate and FalsePositiveRate hold each worker's
	// estimated P(vote yes | duplicate) and P(vote yes | non-duplicate).
	// A reliable worker has TPR near 1 and FPR near 0.
	TruePositiveRate  map[int]float64
	FalsePositiveRate map[int]float64
	// Prior is the estimated fraction of voted-on pairs that are
	// duplicates.
	Prior float64
	// Iterations is the number of EM rounds performed.
	Iterations int
}

// Accuracy returns a worker's estimated balanced accuracy,
// (TPR + (1−FPR))/2 — a single reliability score.
func (m *Model) Accuracy(worker int) float64 {
	tpr, ok := m.TruePositiveRate[worker]
	if !ok {
		return 0.5
	}
	return (tpr + (1 - m.FalsePositiveRate[worker])) / 2
}

// Estimate fits the model to raw votes with at most maxIters EM rounds
// (20 when maxIters ≤ 0), stopping early when the posteriors move less
// than 1e-6. Posteriors are initialized from per-pair majority
// fractions, the standard Dawid–Skene initialization.
func Estimate(votes []crowd.Vote, maxIters int) *Model {
	if maxIters <= 0 {
		maxIters = 20
	}
	// Index votes by pair and by worker. Pairs are processed in a fixed
	// canonical order so floating-point accumulation (and therefore the
	// fitted model) is deterministic.
	byPair := make(map[record.Pair][]crowd.Vote)
	workers := make(map[int]struct{})
	for _, v := range votes {
		byPair[v.Pair] = append(byPair[v.Pair], v)
		workers[v.Worker] = struct{}{}
	}
	pairOrder := make([]record.Pair, 0, len(byPair))
	for p := range byPair {
		pairOrder = append(pairOrder, p)
	}
	sort.Slice(pairOrder, func(i, j int) bool {
		if pairOrder[i].Lo != pairOrder[j].Lo {
			return pairOrder[i].Lo < pairOrder[j].Lo
		}
		return pairOrder[i].Hi < pairOrder[j].Hi
	})
	m := &Model{
		Posterior:         make(map[record.Pair]float64, len(byPair)),
		TruePositiveRate:  make(map[int]float64, len(workers)),
		FalsePositiveRate: make(map[int]float64, len(workers)),
		Prior:             0.5,
	}
	if len(byPair) == 0 {
		return m
	}
	// Init: majority fractions.
	for p, vs := range byPair {
		yes := 0
		for _, v := range vs {
			if v.Yes {
				yes++
			}
		}
		m.Posterior[p] = float64(yes) / float64(len(vs))
	}

	const (
		smooth = 1.0 // Laplace smoothing pseudo-counts
		floor  = 1e-6
	)
	for iter := 0; iter < maxIters; iter++ {
		m.Iterations = iter + 1

		// M-step: worker confusion rates and the prior from current
		// posteriors.
		yesDup := make(map[int]float64)
		totDup := make(map[int]float64)
		yesNon := make(map[int]float64)
		totNon := make(map[int]float64)
		priorSum := 0.0
		for _, p := range pairOrder {
			vs := byPair[p]
			q := m.Posterior[p]
			priorSum += q
			for _, v := range vs {
				totDup[v.Worker] += q
				totNon[v.Worker] += 1 - q
				if v.Yes {
					yesDup[v.Worker] += q
					yesNon[v.Worker] += 1 - q
				}
			}
		}
		m.Prior = clamp(priorSum/float64(len(byPair)), floor, 1-floor)
		for w := range workers {
			m.TruePositiveRate[w] = clamp((yesDup[w]+smooth)/(totDup[w]+2*smooth), floor, 1-floor)
			m.FalsePositiveRate[w] = clamp((yesNon[w]+smooth)/(totNon[w]+2*smooth), floor, 1-floor)
		}

		// E-step: posteriors from the confusion rates, in log space.
		maxDelta := 0.0
		for _, p := range pairOrder {
			vs := byPair[p]
			logDup := math.Log(m.Prior)
			logNon := math.Log(1 - m.Prior)
			for _, v := range vs {
				tpr := m.TruePositiveRate[v.Worker]
				fpr := m.FalsePositiveRate[v.Worker]
				if v.Yes {
					logDup += math.Log(tpr)
					logNon += math.Log(fpr)
				} else {
					logDup += math.Log(1 - tpr)
					logNon += math.Log(1 - fpr)
				}
			}
			// Normalize stably.
			max := logDup
			if logNon > max {
				max = logNon
			}
			q := math.Exp(logDup-max) / (math.Exp(logDup-max) + math.Exp(logNon-max))
			if d := math.Abs(q - m.Posterior[p]); d > maxDelta {
				maxDelta = d
			}
			m.Posterior[p] = q
		}
		if maxDelta < 1e-6 {
			break
		}
	}
	return m
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ErrorRate measures the fraction of pairs whose thresholded decision
// (score > 0.5) disagrees with ground truth, for any score map — used to
// compare majority aggregation against the fitted posteriors.
func ErrorRate(scores map[record.Pair]float64, truth func(record.Pair) bool) float64 {
	if len(scores) == 0 {
		return 0
	}
	wrong := 0
	for p, s := range scores {
		if (s > 0.5) != truth(p) {
			wrong++
		}
	}
	return float64(wrong) / float64(len(scores))
}
