// Package quality implements worker-quality estimation and weighted
// answer aggregation in the style of Dawid–Skene, the quality-management
// line of work the paper cites for extracting high-quality answers from
// crowds ([29, 37, 43, 45] in its related work). Given raw per-worker
// votes (crowd.Vote), an EM procedure jointly estimates each worker's
// confusion probabilities and each pair's posterior probability of being
// a duplicate; the posterior is a drop-in replacement for the plain
// majority-vote crowd score f_c, and it downweights unreliable workers
// automatically.
//
// Estimate runs the EM fit; ErrorRate scores any aggregated answer map
// against ground truth (the measurement behind Table 3's error-rate
// columns). acdcampaign's -aggregate ds flag selects this estimator over
// plain majority voting.
package quality
