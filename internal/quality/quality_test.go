package quality

import (
	"math/rand"
	"testing"

	"acd/internal/crowd"
	"acd/internal/record"
)

// syntheticVotes builds votes from a known worker population: each pair
// is answered by `perPair` distinct workers drawn at random (so reliable
// and unreliable workers overlap on pairs — the mixing Dawid–Skene needs
// for identifiability), each worker erring with its own fixed rate.
func syntheticVotes(nPairs, nWorkers, perPair int, workerErr func(w int) float64, truth func(record.Pair) bool, seed int64) []crowd.Vote {
	rng := rand.New(rand.NewSource(seed))
	var votes []crowd.Vote
	for i := 0; i < nPairs; i++ {
		p := record.MakePair(record.ID(i), record.ID(i+nPairs))
		assignees := rng.Perm(nWorkers)[:perPair]
		for _, w := range assignees {
			correct := rng.Float64() >= workerErr(w)
			votes = append(votes, crowd.Vote{Worker: w, Pair: p, Yes: correct == truth(p)})
		}
	}
	return votes
}

func TestEstimateRecoversWorkerQuality(t *testing.T) {
	truth := func(p record.Pair) bool { return p.Lo%2 == 0 }
	// Workers 0-4 reliable (5% error), workers 5-9 near-random (45%).
	workerErr := func(w int) float64 {
		if w < 5 {
			return 0.05
		}
		return 0.45
	}
	votes := syntheticVotes(3000, 10, 5, workerErr, truth, 1)
	m := Estimate(votes, 30)

	for w := 0; w < 5; w++ {
		for b := 5; b < 10; b++ {
			if m.Accuracy(w) <= m.Accuracy(b) {
				t.Errorf("reliable worker %d (%.3f) not above unreliable %d (%.3f)",
					w, m.Accuracy(w), b, m.Accuracy(b))
			}
		}
	}
	if m.Accuracy(0) < 0.85 {
		t.Errorf("reliable worker accuracy estimated at %.3f", m.Accuracy(0))
	}
}

func TestPosteriorBeatsMajority(t *testing.T) {
	truth := func(p record.Pair) bool { return p.Lo%3 == 0 }
	// A mixed crowd where bad workers are numerous enough to flip
	// majorities but identifiable from their cross-pair behaviour.
	workerErr := func(w int) float64 {
		if w%3 == 0 {
			return 0.05
		}
		return 0.42
	}
	votes := syntheticVotes(5000, 30, 5, workerErr, truth, 2)
	m := Estimate(votes, 30)

	majority := crowd.MajorityScores(votes)
	majErr := ErrorRate(majority, truth)
	dsErr := ErrorRate(m.Posterior, truth)
	if dsErr >= majErr {
		t.Errorf("Dawid-Skene error %.4f not below majority %.4f", dsErr, majErr)
	}
}

func TestEstimateDegenerateInputs(t *testing.T) {
	m := Estimate(nil, 10)
	if len(m.Posterior) != 0 {
		t.Errorf("empty votes produced posteriors")
	}
	if m.Accuracy(42) != 0.5 {
		t.Errorf("unknown worker accuracy = %v, want 0.5", m.Accuracy(42))
	}
	// Single unanimous vote set.
	p := record.MakePair(0, 1)
	votes := []crowd.Vote{
		{Worker: 0, Pair: p, Yes: true},
		{Worker: 1, Pair: p, Yes: true},
		{Worker: 2, Pair: p, Yes: true},
	}
	m = Estimate(votes, 10)
	if m.Posterior[p] < 0.5 {
		t.Errorf("unanimous yes posterior = %v", m.Posterior[p])
	}
}

func TestPosteriorsBounded(t *testing.T) {
	truth := func(p record.Pair) bool { return p.Lo%2 == 0 }
	votes := syntheticVotes(500, 7, 3, func(w int) float64 { return 0.3 }, truth, 3)
	m := Estimate(votes, 25)
	for p, q := range m.Posterior {
		if q < 0 || q > 1 {
			t.Fatalf("posterior %v for %v out of range", q, p)
		}
	}
	if m.Prior <= 0 || m.Prior >= 1 {
		t.Errorf("prior %v out of range", m.Prior)
	}
	if m.Iterations < 1 {
		t.Errorf("no EM iterations recorded")
	}
}

func TestEstimateDeterministic(t *testing.T) {
	truth := func(p record.Pair) bool { return p.Lo%2 == 0 }
	votes := syntheticVotes(300, 5, 3, func(w int) float64 { return 0.2 }, truth, 4)
	a := Estimate(votes, 15)
	b := Estimate(votes, 15)
	for p := range a.Posterior {
		if a.Posterior[p] != b.Posterior[p] {
			t.Fatalf("posterior for %v differs across runs", p)
		}
	}
}

func TestErrorRate(t *testing.T) {
	truth := func(p record.Pair) bool { return p.Lo == 0 }
	scores := map[record.Pair]float64{
		record.MakePair(0, 1): 0.9, // correct
		record.MakePair(2, 3): 0.9, // wrong
		record.MakePair(4, 5): 0.1, // correct
		record.MakePair(6, 7): 0.5, // boundary counts as "no" -> correct
	}
	if got := ErrorRate(scores, truth); got != 0.25 {
		t.Errorf("error rate = %v, want 0.25", got)
	}
	if ErrorRate(nil, truth) != 0 {
		t.Errorf("empty scores error rate != 0")
	}
}

// TestEndToEndWithPool wires the pool's raw votes through the estimator
// and checks the posterior-based answers beat plain majority on a pool
// with badly mixed worker quality.
func TestEndToEndWithPool(t *testing.T) {
	pool := crowd.NewPool(crowd.PoolConfig{
		Size:                  60,
		MeanError:             0.3,
		ErrorSpread:           0.2,
		QualificationPassRate: 1, // admit everyone: quality varies wildly
		Seed:                  5,
	})
	var pairs []record.Pair
	for i := 0; i < 4000; i++ {
		pairs = append(pairs, record.MakePair(record.ID(i), record.ID(i+4000)))
	}
	truth := func(p record.Pair) bool { return p.Lo%2 == 0 }
	votes := crowd.CollectVotes(pairs, truth, crowd.UniformDifficulty(0), pool, crowd.Qualification{}, crowd.FiveWorker(6))

	majority := crowd.MajorityScores(votes)
	m := Estimate(votes, 30)
	majErr := ErrorRate(majority, truth)
	dsErr := ErrorRate(m.Posterior, truth)
	if dsErr >= majErr {
		t.Errorf("pool votes: DS error %.4f not below majority %.4f", dsErr, majErr)
	}
}
