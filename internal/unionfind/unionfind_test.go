package unionfind

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBasic(t *testing.T) {
	uf := New(5)
	if uf.Count() != 5 || uf.Len() != 5 {
		t.Fatalf("fresh forest: count=%d len=%d", uf.Count(), uf.Len())
	}
	if !uf.Union(0, 1) {
		t.Errorf("first union should merge")
	}
	if uf.Union(1, 0) {
		t.Errorf("repeated union should not merge")
	}
	if !uf.Same(0, 1) || uf.Same(0, 2) {
		t.Errorf("Same wrong after union")
	}
	uf.Union(2, 3)
	uf.Union(0, 3)
	if uf.Count() != 2 {
		t.Errorf("count = %d, want 2", uf.Count())
	}
	want := [][]int{{0, 1, 2, 3}, {4}}
	if got := uf.Sets(); !reflect.DeepEqual(got, want) {
		t.Errorf("Sets = %v, want %v", got, want)
	}
}

func TestSetsDeterministic(t *testing.T) {
	uf := New(6)
	uf.Union(5, 2)
	uf.Union(4, 1)
	want := [][]int{{0}, {1, 4}, {2, 5}, {3}}
	if got := uf.Sets(); !reflect.DeepEqual(got, want) {
		t.Errorf("Sets = %v, want %v", got, want)
	}
}

// Property: after a random sequence of unions, Same agrees with a naive
// reference implementation, and Count equals the number of reference sets.
func TestAgainstNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		uf := New(n)
		// Naive: label array.
		label := make([]int, n)
		for i := range label {
			label[i] = i
		}
		relabel := func(from, to int) {
			for i := range label {
				if label[i] == from {
					label[i] = to
				}
			}
		}
		for k := 0; k < 3*n; k++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			uf.Union(a, b)
			if label[a] != label[b] {
				relabel(label[a], label[b])
			}
		}
		distinct := map[int]struct{}{}
		for i := 0; i < n; i++ {
			distinct[label[i]] = struct{}{}
			for j := i + 1; j < n; j++ {
				if uf.Same(i, j) != (label[i] == label[j]) {
					return false
				}
			}
		}
		return uf.Count() == len(distinct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Sets always forms a partition — disjoint, covering, members sorted.
func TestSetsPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		uf := New(n)
		for k := 0; k < n; k++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				uf.Union(a, b)
			}
		}
		seen := make([]bool, n)
		total := 0
		for _, set := range uf.Sets() {
			for i, m := range set {
				if seen[m] {
					return false
				}
				seen[m] = true
				if i > 0 && set[i-1] >= m {
					return false
				}
				total++
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
