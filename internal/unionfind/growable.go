package unionfind

// Growable is a growable min-root disjoint-set forest: the root of every
// set is its smallest member, so canonical cluster listings fall out of
// the structure with no extra bookkeeping. Unlike UF it is sized lazily —
// Grow extends the universe with singletons — which fits callers whose
// universe grows over time: the incremental engine's id space grows with
// every Add, and the shard router's global id space grows with every
// routed record.
type Growable struct {
	parent []int
}

// Grow extends the forest with singletons up to n elements.
func (u *Growable) Grow(n int) {
	for len(u.parent) < n {
		u.parent = append(u.parent, len(u.parent))
	}
}

// Len returns the current universe size.
func (u *Growable) Len() int { return len(u.parent) }

// Find returns the canonical (minimum) representative of x's set.
func (u *Growable) Find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]] // path halving
		x = u.parent[x]
	}
	return x
}

// Union merges the sets containing a and b, keeping the smaller root.
func (u *Growable) Union(a, b int) {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return
	}
	if ra < rb {
		u.parent[rb] = ra
	} else {
		u.parent[ra] = rb
	}
}

// Same reports whether a and b are in the same set.
func (u *Growable) Same(a, b int) bool { return u.Find(a) == u.Find(b) }

// Clone returns an independent copy of the forest.
func (u *Growable) Clone() *Growable {
	return &Growable{parent: append([]int(nil), u.parent...)}
}

// Sets returns the partition of 0..n-1 in canonical form: members
// ascending within each set, sets ordered by their smallest member.
func (u *Growable) Sets(n int) [][]int {
	bySet := make(map[int][]int)
	var roots []int
	for i := 0; i < n; i++ {
		r := u.Find(i)
		if _, ok := bySet[r]; !ok {
			roots = append(roots, r)
		}
		bySet[r] = append(bySet[r], i)
	}
	// Min-root makes every root its set's first member, and roots were
	// discovered in ascending order of that first member.
	out := make([][]int, 0, len(roots))
	for _, r := range roots {
		out = append(out, bySet[r])
	}
	return out
}
