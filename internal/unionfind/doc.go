// Package unionfind provides a disjoint-set forest with union by rank and
// path compression. It backs the transitive-closure bookkeeping in the
// TransM and TransNode baselines (the inference rule of [47]: answered
// pairs imply unanswered ones through transitivity) and
// connected-component extraction in the machine clustering package
// (Figure 1's transitive-closure failure mode).
package unionfind
