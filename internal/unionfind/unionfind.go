package unionfind

// UF is a disjoint-set forest over the dense universe 0..n-1.
type UF struct {
	parent []int
	rank   []byte
	count  int
}

// New returns a forest of n singleton sets.
func New(n int) *UF {
	uf := &UF{
		parent: make([]int, n),
		rank:   make([]byte, n),
		count:  n,
	}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

// Len returns the size of the universe.
func (u *UF) Len() int { return len(u.parent) }

// Count returns the current number of disjoint sets.
func (u *UF) Count() int { return u.count }

// Find returns the canonical representative of x's set.
func (u *UF) Find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]] // path halving
		x = u.parent[x]
	}
	return x
}

// Union merges the sets containing x and y. It reports whether a merge
// happened (false when they were already in the same set).
func (u *UF) Union(x, y int) bool {
	rx, ry := u.Find(x), u.Find(y)
	if rx == ry {
		return false
	}
	if u.rank[rx] < u.rank[ry] {
		rx, ry = ry, rx
	}
	u.parent[ry] = rx
	if u.rank[rx] == u.rank[ry] {
		u.rank[rx]++
	}
	u.count--
	return true
}

// Same reports whether x and y are in the same set.
func (u *UF) Same(x, y int) bool { return u.Find(x) == u.Find(y) }

// Clone returns an independent copy of the forest.
func (u *UF) Clone() *UF {
	return &UF{
		parent: append([]int(nil), u.parent...),
		rank:   append([]byte(nil), u.rank...),
		count:  u.count,
	}
}

// Sets returns the current partition as a slice of member slices. Members
// within each set and sets themselves are ordered by smallest element, so
// the output is deterministic.
func (u *UF) Sets() [][]int {
	groups := make(map[int][]int)
	order := make([]int, 0)
	for i := range u.parent {
		r := u.Find(i)
		if _, ok := groups[r]; !ok {
			order = append(order, r)
		}
		groups[r] = append(groups[r], i)
	}
	// Order sets by their smallest member; members are already ascending
	// because we iterate i in increasing order.
	out := make([][]int, 0, len(order))
	for _, r := range order {
		out = append(out, groups[r])
	}
	// groups[r][0] is the smallest member of each set; order was appended
	// in first-seen order which is already by smallest member.
	return out
}
