package acd_test

import (
	"strings"
	"testing"

	"acd"
)

func brandRecords() ([]acd.Record, []int) {
	raw := []struct {
		text   string
		entity int
	}{
		{"chevrolet motor division detroit michigan usa", 0},
		{"chevy motor division detroit michigan usa", 0},
		{"chevron oil corporation san ramon california", 1},
		{"chevron corporation oil and gas san ramon", 1},
		{"quantum groceries boston massachusetts", 2},
	}
	records := make([]acd.Record, len(raw))
	entities := make([]int, len(raw))
	for i, r := range raw {
		records[i] = acd.Record{Fields: map[string]string{"name": r.text}}
		entities[i] = r.entity
	}
	return records, entities
}

// perfectCrowd answers according to ground truth.
func perfectCrowd(entities []int) acd.CrowdFunc {
	return func(i, j int) float64 {
		if entities[i] == entities[j] {
			return 1
		}
		return 0
	}
}

func TestDeduplicatePerfectCrowd(t *testing.T) {
	records, entities := brandRecords()
	res, err := acd.Deduplicate(records, perfectCrowd(entities), acd.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p, r, f1 := res.F1(entities)
	if p != 1 || r != 1 || f1 != 1 {
		t.Errorf("P/R/F1 = %v/%v/%v, clusters %v", p, r, f1, res.Clusters)
	}
	// Partition invariants.
	seen := map[int]bool{}
	for ci, members := range res.Clusters {
		for _, m := range members {
			if seen[m] {
				t.Fatalf("record %d in two clusters", m)
			}
			seen[m] = true
			if res.ClusterOf[m] != ci {
				t.Errorf("ClusterOf[%d] = %d, want %d", m, res.ClusterOf[m], ci)
			}
		}
	}
	if len(seen) != len(records) {
		t.Errorf("covered %d of %d records", len(seen), len(records))
	}
	if res.PairsAsked == 0 || res.Iterations == 0 || res.CandidatePairs == 0 {
		t.Errorf("missing accounting: %+v", res)
	}
	if res.HITs == 0 || res.Cents != res.HITs*2 {
		t.Errorf("cost accounting wrong: %+v", res)
	}
}

func TestDeduplicateValidation(t *testing.T) {
	records, entities := brandRecords()
	fn := perfectCrowd(entities)
	cases := []struct {
		name    string
		records []acd.Record
		fn      acd.CrowdFunc
		opts    acd.Options
		wantErr string
	}{
		{"empty", nil, fn, acd.Options{}, "no records"},
		{"nilcrowd", records, nil, acd.Options{}, "nil crowd"},
		{"badtau", records, fn, acd.Options{Tau: 1.5}, "Tau"},
		{"badeps", records, fn, acd.Options{Epsilon: 2}, "Epsilon"},
		{"badmetric", records, fn, acd.Options{Metric: "nope"}, "metric"},
	}
	for _, c := range cases {
		_, err := acd.Deduplicate(c.records, c.fn, c.opts)
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.wantErr)
		}
	}
}

func TestDeduplicateCustomMetric(t *testing.T) {
	records, entities := brandRecords()
	res, err := acd.Deduplicate(records, perfectCrowd(entities), acd.Options{
		Metric: "levenshtein",
		Tau:    0.4,
		Seed:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, f1 := res.F1(entities); f1 < 0.5 {
		t.Errorf("levenshtein pipeline F1 = %v", f1)
	}
}

func TestDeduplicateSkipRefinement(t *testing.T) {
	records, entities := brandRecords()
	res, err := acd.Deduplicate(records, perfectCrowd(entities), acd.Options{
		SkipRefinement: true,
		Seed:           3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, f1 := res.F1(entities); f1 < 0.9 {
		t.Errorf("PC-Pivot-only F1 = %v on an easy instance", f1)
	}
}

// TestDeduplicateNoisyCrowdStillClusters runs the facade with a noisy
// crowd and just asserts sanity: a valid partition and bounded cost.
func TestDeduplicateNoisyCrowd(t *testing.T) {
	records, entities := brandRecords()
	calls := 0
	noisy := func(i, j int) float64 {
		calls++
		truth := entities[i] == entities[j]
		// A deterministic "2 of 3 workers right" vote.
		if truth {
			return 2.0 / 3
		}
		return 1.0 / 3
	}
	res, err := acd.Deduplicate(records, noisy, acd.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if calls != res.PairsAsked {
		t.Errorf("crowd called %d times for %d pairs", calls, res.PairsAsked)
	}
	if _, _, f1 := res.F1(entities); f1 != 1 {
		t.Errorf("majority-correct crowd should still yield F1 1, got %v", f1)
	}
}

func TestDeduplicateProgressHook(t *testing.T) {
	records, entities := brandRecords()
	var lastPairs, lastIters, calls int
	res, err := acd.Deduplicate(records, perfectCrowd(entities), acd.Options{
		Seed: 1,
		OnProgress: func(pairs, iterations int) {
			calls++
			if pairs < lastPairs || iterations != lastIters+1 {
				t.Errorf("progress went backwards: %d/%d after %d/%d",
					pairs, iterations, lastPairs, lastIters)
			}
			lastPairs, lastIters = pairs, iterations
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != res.Iterations {
		t.Errorf("hook fired %d times for %d iterations", calls, res.Iterations)
	}
	if lastPairs != res.PairsAsked {
		t.Errorf("final progress pairs %d != result %d", lastPairs, res.PairsAsked)
	}
}

// TestDeduplicateParallelismInvariant checks the facade knob: results
// must be identical whatever the pruning worker-pool size, since the
// parallel join is byte-equivalent to the sequential one.
func TestDeduplicateParallelismInvariant(t *testing.T) {
	records, entities := brandRecords()
	base, err := acd.Deduplicate(records, perfectCrowd(entities), acd.Options{Seed: 6, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{0, 2, 8} {
		res, err := acd.Deduplicate(records, perfectCrowd(entities), acd.Options{Seed: 6, Parallelism: p})
		if err != nil {
			t.Fatal(err)
		}
		if res.CandidatePairs != base.CandidatePairs || res.PairsAsked != base.PairsAsked ||
			len(res.Clusters) != len(base.Clusters) {
			t.Errorf("Parallelism %d changed the result: %+v vs %+v", p, res, base)
		}
	}
}

// TestDeduplicateMarket runs the facade through a simulated
// marketplace: clustering stays correct with an accurate fleet, the
// spend is booked through the market (not the uniform rate), and the
// market/* metric family lands in the result snapshot.
func TestDeduplicateMarket(t *testing.T) {
	records, entities := brandRecords()
	res, err := acd.Deduplicate(records, perfectCrowd(entities), acd.Options{
		Seed:   1,
		Market: "fast:1:20:0;careful:6:10:0;machine:0:0:0.45:machine",
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, f1 := res.F1(entities); f1 != 1 {
		t.Errorf("error-free marketplace fleet should yield F1 1, got %v (clusters %v)", f1, res.Clusters)
	}
	spend, ok := res.Metrics.Counters["market/spend_cents"]
	if !ok {
		t.Fatal("market/spend_cents missing from the metrics snapshot")
	}
	if int(spend) != res.Cents {
		t.Errorf("session booked %d cents, market spent %d", res.Cents, spend)
	}
	if res.Metrics.Counters["market/routed"] == 0 {
		t.Error("market/routed never incremented")
	}

	if _, err := acd.Deduplicate(records, perfectCrowd(entities), acd.Options{
		Market: "bad spec",
	}); err == nil {
		t.Error("bad fleet spec accepted")
	}

	capped, err := acd.Deduplicate(records, perfectCrowd(entities), acd.Options{
		Seed:         1,
		Market:       "careful:6:10:0.02",
		MarketBudget: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if capped.Cents > 6 {
		t.Errorf("budget 6 overspent: %d cents", capped.Cents)
	}
}

func TestDeduplicateDeterminism(t *testing.T) {
	records, entities := brandRecords()
	a, err := acd.Deduplicate(records, perfectCrowd(entities), acd.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := acd.Deduplicate(records, perfectCrowd(entities), acd.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Clusters) != len(b.Clusters) || a.PairsAsked != b.PairsAsked {
		t.Errorf("same seed differed: %+v vs %+v", a, b)
	}
}
