// Package acd is the public facade of the ACD (Adaptive Crowd-Based
// Deduplication) library, a from-scratch implementation of Wang, Xiao
// and Lee's SIGMOD 2015 paper. It wires the three phases — machine
// pruning, crowd-backed cluster generation (PC-Pivot), and crowd-backed
// cluster refinement (PC-Refine) — behind a single call:
//
//	result, err := acd.Deduplicate(records, crowdFn, acd.Options{})
//
// The crowd is abstracted as a function from a record pair to the
// fraction of workers who consider it a duplicate; plug in a live
// crowdsourcing platform, the bundled simulator (internal/crowd), or
// a fixed oracle for tests. For the individual phases, the baselines,
// and the experiment harness, see the internal packages (this module's
// commands and examples demonstrate them).
package acd

import (
	"context"
	"errors"
	"fmt"
	"io"

	"acd/internal/cluster"
	"acd/internal/core"
	"acd/internal/crowd"
	"acd/internal/obs"
	"acd/internal/pruning"
	"acd/internal/record"
	"acd/internal/similarity"
)

// Record is a record to be deduplicated: a bag of named string fields.
type Record struct {
	// Fields holds the record's attributes, e.g. {"name": ..., "city": ...}.
	Fields map[string]string
}

// CrowdFunc answers one record pair with the crowd's confidence in
// [0, 1] that the two records are duplicates (e.g. the fraction of a
// majority vote). Indices refer to the records slice passed to
// Deduplicate. The function may block while humans answer.
type CrowdFunc func(i, j int) float64

// Options configures Deduplicate. The zero value reproduces the paper's
// settings: Jaccard similarity, τ = 0.3, ε = 0.1, T = N_m/8, 3 workers
// with 20 pairs per HIT at 2 cents.
type Options struct {
	// Tau is the pruning threshold: pairs with machine similarity ≤ Tau
	// are assumed non-duplicates and never shown to the crowd.
	Tau float64
	// Metric names the machine similarity: "jaccard" (default),
	// "levenshtein", "jaro-winkler", "cosine", "ngram", "overlap",
	// "phonetic", or "combined".
	Metric string
	// Epsilon bounds the fraction of wasted crowd questions during
	// cluster generation (Equation 4 of the paper).
	Epsilon float64
	// RefineX sets the refinement batch budget T = N_m/RefineX.
	RefineX int
	// SkipRefinement stops after cluster generation (the paper's
	// PC-Pivot-only variant).
	SkipRefinement bool
	// Workers, PairsPerHIT and CentsPerHIT describe the crowd setting
	// for cost accounting.
	Workers     int
	PairsPerHIT int
	CentsPerHIT int
	// Seed drives the algorithm's random choices; equal seeds and crowd
	// answers give identical results.
	Seed int64
	// Parallelism sizes the worker pool of the pruning phase's
	// similarity join: 0 (or negative) means one worker per CPU, 1 runs
	// the sequential reference path, n > 1 uses exactly n workers. The
	// setting changes speed only — pruning output is byte-identical at
	// every level, so results stay reproducible.
	Parallelism int
	// OnProgress, when set, is called after every crowd iteration with
	// the running totals — useful feedback during long live-crowd runs.
	OnProgress func(pairsAsked, iterations int)
	// Context, when set, makes the campaign cancellable: cancelling it
	// stops the run cleanly mid-crowd-iteration and Deduplicate returns
	// the context's error. Nil means the run cannot be cancelled.
	Context context.Context
	// Trace, when set, receives a JSONL event stream as the run
	// progresses (one pruning summary, one event per PC-Pivot round, one
	// per refinement batch). Tracing never changes the result. The
	// aggregate counters are always collected and returned in
	// Result.Metrics regardless of this setting.
	Trace io.Writer
}

// Result is the outcome of a Deduplicate call.
type Result struct {
	// Clusters maps each cluster to the indices (into the input slice)
	// of its records. Clusters are disjoint and cover every record.
	Clusters [][]int
	// ClusterOf maps each record index to its cluster's position in
	// Clusters.
	ClusterOf []int
	// PairsAsked is the number of distinct record pairs sent to the
	// crowd.
	PairsAsked int
	// Iterations is the number of crowd round-trips (batches of HITs).
	Iterations int
	// HITs and Cents are the estimated task count and cost under the
	// configured crowd setting.
	HITs  int
	Cents int
	// CandidatePairs is the size of the candidate set after pruning.
	CandidatePairs int
	// Metrics is the run's full observability snapshot: per-phase
	// counters (pruning funnel, PC-Pivot rounds and wasted pairs, refine
	// operations, crowd accounting), value distributions, and phase
	// timings. See internal/obs for the schema and the metric name
	// reference in the README.
	Metrics obs.Metrics
}

// Deduplicate clusters records into groups of duplicates using machine
// pruning plus the crowd. It returns an error for empty input, an
// unknown metric, or out-of-range options.
func Deduplicate(records []Record, crowdFn CrowdFunc, opts Options) (*Result, error) {
	if len(records) == 0 {
		return nil, errors.New("acd: no records")
	}
	if crowdFn == nil {
		return nil, errors.New("acd: nil crowd function")
	}
	if opts.Tau < 0 || opts.Tau >= 1 {
		return nil, fmt.Errorf("acd: Tau %v out of [0, 1)", opts.Tau)
	}
	if opts.Epsilon < 0 || opts.Epsilon > 1 {
		return nil, fmt.Errorf("acd: Epsilon %v out of [0, 1]", opts.Epsilon)
	}
	metricName := opts.Metric
	if metricName == "" {
		metricName = "jaccard"
	}
	var metric similarity.Metric
	if metricName != "jaccard" {
		if metric = similarity.ByName(metricName); metric == nil {
			return nil, fmt.Errorf("acd: unknown metric %q", metricName)
		}
	}

	rec := obs.New()
	if opts.Trace != nil {
		rec.SetTrace(opts.Trace)
	}

	recs := make([]record.Record, len(records))
	for i, r := range records {
		recs[i] = record.New(record.ID(i), r.Fields)
	}
	cands := pruning.Prune(recs, pruning.Options{
		Tau:         opts.Tau,
		Metric:      metric,
		Parallelism: opts.Parallelism,
		Obs:         rec,
	})

	cfg := crowd.Config{
		Workers:     orDefault(opts.Workers, 3),
		PairsPerHIT: orDefault(opts.PairsPerHIT, 20),
		CentsPerHIT: orDefault(opts.CentsPerHIT, 2),
	}
	source := &progressSource{
		fn:         func(p record.Pair) float64 { return crowdFn(int(p.Lo), int(p.Hi)) },
		cfg:        cfg,
		onProgress: opts.OnProgress,
	}

	out := core.ACD(cands, source, core.Config{
		Epsilon:        opts.Epsilon,
		RefineX:        opts.RefineX,
		SkipRefinement: opts.SkipRefinement,
		Seed:           opts.Seed,
		Obs:            rec,
		Ctx:            opts.Context,
	})
	if out.Err != nil {
		return nil, fmt.Errorf("acd: campaign aborted: %w", out.Err)
	}

	res := &Result{
		ClusterOf:      make([]int, len(records)),
		PairsAsked:     out.Stats.Pairs,
		Iterations:     out.Stats.Iterations,
		HITs:           out.Stats.HITs,
		Cents:          out.Stats.Cents,
		CandidatePairs: len(cands.Pairs),
		Metrics:        rec.Snapshot(),
	}
	for ci, set := range out.Clusters.Sets() {
		members := make([]int, len(set))
		for i, r := range set {
			members[i] = int(r)
			res.ClusterOf[r] = ci
		}
		res.Clusters = append(res.Clusters, members)
	}
	return res, nil
}

// F1 computes pairwise precision, recall and F1 of a result against
// ground-truth entity labels (entity[i] is the true entity of record i).
func (r *Result) F1(entity []int) (precision, recall, f1 float64) {
	sets := make([][]record.ID, len(r.Clusters))
	for i, members := range r.Clusters {
		ids := make([]record.ID, len(members))
		for j, m := range members {
			ids[j] = record.ID(m)
		}
		sets[i] = ids
	}
	c, err := cluster.FromSets(len(r.ClusterOf), sets)
	if err != nil {
		panic("acd: corrupt result: " + err.Error())
	}
	e := cluster.Evaluate(c, entity)
	return e.Precision, e.Recall, e.F1
}

func orDefault(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}

// progressSource adapts the user's crowd function to the internal Source
// interfaces, counting batches so OnProgress fires once per crowd
// iteration.
type progressSource struct {
	fn         func(record.Pair) float64
	cfg        crowd.Config
	onProgress func(pairsAsked, iterations int)
	asked      int
	iterations int
}

func (s *progressSource) Score(p record.Pair) float64 { return s.fn(p) }

func (s *progressSource) Config() crowd.Config { return s.cfg }

// ScoreBatch implements crowd.BatchSource: each call is one crowd
// iteration.
func (s *progressSource) ScoreBatch(pairs []record.Pair) []float64 {
	out := make([]float64, len(pairs))
	for i, p := range pairs {
		out[i] = s.fn(p)
	}
	s.asked += len(pairs)
	s.iterations++
	if s.onProgress != nil {
		s.onProgress(s.asked, s.iterations)
	}
	return out
}
