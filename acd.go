// Package acd is the public facade of the ACD (Adaptive Crowd-Based
// Deduplication) library, a from-scratch implementation of Wang, Xiao
// and Lee's SIGMOD 2015 paper. It wires the three phases — machine
// pruning, crowd-backed cluster generation (PC-Pivot), and crowd-backed
// cluster refinement (PC-Refine) — behind a single call:
//
//	result, err := acd.Deduplicate(records, crowdFn, acd.Options{})
//
// The crowd is abstracted as a function from a record pair to the
// fraction of workers who consider it a duplicate; plug in a live
// crowdsourcing platform, the bundled simulator (internal/crowd), or
// a fixed oracle for tests. For the individual phases, the baselines,
// and the experiment harness, see the internal packages (this module's
// commands and examples demonstrate them).
package acd

import (
	"context"
	"errors"
	"fmt"
	"io"

	"acd/internal/cluster"
	"acd/internal/core"
	"acd/internal/crowd"
	"acd/internal/market"
	"acd/internal/obs"
	"acd/internal/pruning"
	"acd/internal/record"
	"acd/internal/similarity"
)

// Record is a record to be deduplicated: a bag of named string fields.
type Record struct {
	// Fields holds the record's attributes, e.g. {"name": ..., "city": ...}.
	Fields map[string]string
}

// CrowdFunc answers one record pair with the crowd's confidence in
// [0, 1] that the two records are duplicates (e.g. the fraction of a
// majority vote). Indices refer to the records slice passed to
// Deduplicate. The function may block while humans answer.
type CrowdFunc func(i, j int) float64

// Options configures Deduplicate. The zero value reproduces the paper's
// settings: Jaccard similarity, τ = 0.3, ε = 0.1, T = N_m/8, 3 workers
// with 20 pairs per HIT at 2 cents.
type Options struct {
	// Tau is the pruning threshold: pairs with machine similarity ≤ Tau
	// are assumed non-duplicates and never shown to the crowd.
	Tau float64
	// Metric names the machine similarity: "jaccard" (default),
	// "levenshtein", "jaro-winkler", "cosine", "ngram", "overlap",
	// "phonetic", or "combined".
	Metric string
	// Epsilon bounds the fraction of wasted crowd questions during
	// cluster generation (Equation 4 of the paper).
	Epsilon float64
	// RefineX sets the refinement batch budget T = N_m/RefineX.
	RefineX int
	// SkipRefinement stops after cluster generation (the paper's
	// PC-Pivot-only variant).
	SkipRefinement bool
	// Workers, PairsPerHIT and CentsPerHIT describe the crowd setting
	// for cost accounting.
	Workers     int
	PairsPerHIT int
	CentsPerHIT int
	// Seed drives the algorithm's random choices; equal seeds and crowd
	// answers give identical results.
	Seed int64
	// Parallelism sizes the worker pool of the pruning phase's
	// similarity join: 0 (or negative) means one worker per CPU, 1 runs
	// the sequential reference path, n > 1 uses exactly n workers. The
	// setting changes speed only — pruning output is byte-identical at
	// every level, so results stay reproducible.
	Parallelism int
	// Market, when set, routes crowd questions through a simulated
	// heterogeneous marketplace instead of a single uniform channel. The
	// value is a fleet spec (see internal/market, e.g.
	// "fast:1:20:0.12;careful:6:10:0.02;machine:0:0:0.35:machine"):
	// backends with per-HIT prices, batch sizes, and calibrated error
	// rates, each answering from crowdFn with its error rate applied.
	// Every question is bought from the backend whose answer carries the
	// best information value per cent, questions are packed into
	// multi-pair HITs ordered likely-duplicates-first, and transitively
	// implied pairs are answered for free. HITs and Cents in the Result
	// reflect what the marketplace actually spent.
	Market string
	// MarketBudget caps marketplace spend in cents: once a new HIT no
	// longer fits, questions degrade to the machine prior. Zero or
	// negative means unlimited. Ignored without Market.
	MarketBudget int
	// OnProgress, when set, is called after every crowd iteration with
	// the running totals — useful feedback during long live-crowd runs.
	OnProgress func(pairsAsked, iterations int)
	// Context, when set, makes the campaign cancellable: cancelling it
	// stops the run cleanly mid-crowd-iteration and Deduplicate returns
	// the context's error. Nil means the run cannot be cancelled.
	Context context.Context
	// Trace, when set, receives a JSONL event stream as the run
	// progresses (one pruning summary, one event per PC-Pivot round, one
	// per refinement batch). Tracing never changes the result. The
	// aggregate counters are always collected and returned in
	// Result.Metrics regardless of this setting.
	Trace io.Writer
}

// Result is the outcome of a Deduplicate call.
type Result struct {
	// Clusters maps each cluster to the indices (into the input slice)
	// of its records. Clusters are disjoint and cover every record.
	Clusters [][]int
	// ClusterOf maps each record index to its cluster's position in
	// Clusters.
	ClusterOf []int
	// PairsAsked is the number of distinct record pairs sent to the
	// crowd.
	PairsAsked int
	// Iterations is the number of crowd round-trips (batches of HITs).
	Iterations int
	// HITs and Cents are the estimated task count and cost under the
	// configured crowd setting.
	HITs  int
	Cents int
	// CandidatePairs is the size of the candidate set after pruning.
	CandidatePairs int
	// Metrics is the run's full observability snapshot: per-phase
	// counters (pruning funnel, PC-Pivot rounds and wasted pairs, refine
	// operations, crowd accounting), value distributions, and phase
	// timings. See internal/obs for the schema and the metric name
	// reference in the README.
	Metrics obs.Metrics
}

// Deduplicate clusters records into groups of duplicates using machine
// pruning plus the crowd. It returns an error for empty input, an
// unknown metric, or out-of-range options.
func Deduplicate(records []Record, crowdFn CrowdFunc, opts Options) (*Result, error) {
	if len(records) == 0 {
		return nil, errors.New("acd: no records")
	}
	if crowdFn == nil {
		return nil, errors.New("acd: nil crowd function")
	}
	if opts.Tau < 0 || opts.Tau >= 1 {
		return nil, fmt.Errorf("acd: Tau %v out of [0, 1)", opts.Tau)
	}
	if opts.Epsilon < 0 || opts.Epsilon > 1 {
		return nil, fmt.Errorf("acd: Epsilon %v out of [0, 1]", opts.Epsilon)
	}
	metricName := opts.Metric
	if metricName == "" {
		metricName = "jaccard"
	}
	var metric similarity.Metric
	if metricName != "jaccard" {
		if metric = similarity.ByName(metricName); metric == nil {
			return nil, fmt.Errorf("acd: unknown metric %q", metricName)
		}
	}

	rec := obs.New()
	if opts.Trace != nil {
		rec.SetTrace(opts.Trace)
	}

	recs := make([]record.Record, len(records))
	for i, r := range records {
		recs[i] = record.New(record.ID(i), r.Fields)
	}
	cands := pruning.Prune(recs, pruning.Options{
		Tau:         opts.Tau,
		Metric:      metric,
		Parallelism: opts.Parallelism,
		Obs:         rec,
	})

	cfg := crowd.Config{
		Workers:     orDefault(opts.Workers, 3),
		PairsPerHIT: orDefault(opts.PairsPerHIT, 20),
		CentsPerHIT: orDefault(opts.CentsPerHIT, 2),
	}
	base := func(p record.Pair) float64 { return crowdFn(int(p.Lo), int(p.Hi)) }
	var inner crowd.Source = crowd.SourceFunc{Fn: base, Setting: cfg}
	if opts.Market != "" {
		backends, err := market.Fleet(opts.Market, base, opts.Seed)
		if err != nil {
			return nil, fmt.Errorf("acd: %w", err)
		}
		budget := market.Unlimited
		if opts.MarketBudget > 0 {
			budget = opts.MarketBudget
		}
		inner = market.New(market.Config{
			Backends:     backends,
			BudgetCents:  budget,
			Order:        market.OrderConfidence,
			ShortCircuit: true,
			Prior:        cands.Score,
			Seed:         opts.Seed,
		})
	}
	source := &progressSource{inner: inner, onProgress: opts.OnProgress}

	out := core.ACD(cands, source, core.Config{
		Epsilon:        opts.Epsilon,
		RefineX:        opts.RefineX,
		SkipRefinement: opts.SkipRefinement,
		Seed:           opts.Seed,
		Obs:            rec,
		Ctx:            opts.Context,
	})
	if out.Err != nil {
		return nil, fmt.Errorf("acd: campaign aborted: %w", out.Err)
	}

	res := &Result{
		ClusterOf:      make([]int, len(records)),
		PairsAsked:     out.Stats.Pairs,
		Iterations:     out.Stats.Iterations,
		HITs:           out.Stats.HITs,
		Cents:          out.Stats.Cents,
		CandidatePairs: len(cands.Pairs),
		Metrics:        rec.Snapshot(),
	}
	for ci, set := range out.Clusters.Sets() {
		members := make([]int, len(set))
		for i, r := range set {
			members[i] = int(r)
			res.ClusterOf[r] = ci
		}
		res.Clusters = append(res.Clusters, members)
	}
	return res, nil
}

// F1 computes pairwise precision, recall and F1 of a result against
// ground-truth entity labels (entity[i] is the true entity of record i).
func (r *Result) F1(entity []int) (precision, recall, f1 float64) {
	sets := make([][]record.ID, len(r.Clusters))
	for i, members := range r.Clusters {
		ids := make([]record.ID, len(members))
		for j, m := range members {
			ids[j] = record.ID(m)
		}
		sets[i] = ids
	}
	c, err := cluster.FromSets(len(r.ClusterOf), sets)
	if err != nil {
		panic("acd: corrupt result: " + err.Error())
	}
	e := cluster.Evaluate(c, entity)
	return e.Precision, e.Recall, e.F1
}

func orDefault(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}

// progressSource wraps the run's crowd source (the plain crowdFn
// adapter or a marketplace), counting batches so OnProgress fires once
// per crowd iteration and forwarding every optional source interface —
// billing, vote counts, and recorder plumbing — to the wrapped source.
type progressSource struct {
	inner      crowd.Source
	onProgress func(pairsAsked, iterations int)
	asked      int
	iterations int
}

func (s *progressSource) Score(p record.Pair) float64 { return s.inner.Score(p) }

func (s *progressSource) Config() crowd.Config { return s.inner.Config() }

// ScoreBatch implements crowd.BatchSource: each call is one crowd
// iteration.
func (s *progressSource) ScoreBatch(pairs []record.Pair) []float64 {
	var out []float64
	if b, ok := s.inner.(crowd.BatchSource); ok {
		out = b.ScoreBatch(pairs)
	} else {
		out = make([]float64, len(pairs))
		for i, p := range pairs {
			out[i] = s.inner.Score(p)
		}
	}
	s.progress(len(pairs))
	return out
}

// ScoreBatchCtx implements crowd.ContextBatchSource when the inner
// source is cancellable; otherwise it degrades to ScoreBatch.
func (s *progressSource) ScoreBatchCtx(ctx context.Context, pairs []record.Pair) ([]float64, error) {
	cb, ok := s.inner.(crowd.ContextBatchSource)
	if !ok {
		return s.ScoreBatch(pairs), nil
	}
	out, err := cb.ScoreBatchCtx(ctx, pairs)
	if err != nil {
		return nil, err
	}
	s.progress(len(pairs))
	return out, nil
}

func (s *progressSource) progress(n int) {
	s.asked += n
	s.iterations++
	if s.onProgress != nil {
		s.onProgress(s.asked, s.iterations)
	}
}

// Bill implements crowd.Biller by forwarding to the inner source, so a
// marketplace's real spend reaches the session's accounting.
func (s *progressSource) Bill() (hits, cents int, ok bool) {
	if b, ok := s.inner.(crowd.Biller); ok {
		return b.Bill()
	}
	return 0, 0, false
}

// VoteCount implements crowd.VoteCounter by forwarding to the inner
// source; without one, the uniform worker count applies.
func (s *progressSource) VoteCount(p record.Pair) int {
	if v, ok := s.inner.(crowd.VoteCounter); ok {
		return v.VoteCount(p)
	}
	return s.inner.Config().Workers
}

// SetRecorder implements crowd.RecorderSetter, pushing the session's
// recorder down into the wrapped source.
func (s *progressSource) SetRecorder(rec *obs.Recorder) {
	if rs, ok := s.inner.(crowd.RecorderSetter); ok {
		rs.SetRecorder(rec)
	}
}

// Recorder implements crowd.RecorderCarrier.
func (s *progressSource) Recorder() *obs.Recorder {
	if rc, ok := s.inner.(crowd.RecorderCarrier); ok {
		return rc.Recorder()
	}
	return nil
}
