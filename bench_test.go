// Package acd_test hosts the benchmark harness that regenerates every
// table and figure of the paper's evaluation (Section 6 and Appendix C):
//
//	BenchmarkTable3              Table 3  (dataset + crowd characteristics)
//	BenchmarkFigure5Iterations   Fig 5a-c (PC-Pivot crowd iterations vs ε)
//	BenchmarkFigure5Pairs        Fig 5d   (PC-Pivot crowdsourced pairs vs ε)
//	BenchmarkFigure6F1           Fig 6    (F1 of all methods)
//	BenchmarkFigure7Pairs        Fig 7    (crowdsourced pairs of all methods)
//	BenchmarkFigure8Iterations   Fig 8    (crowd iterations of all methods)
//	BenchmarkFigure10            Fig 10   (ACD vs refinement budget T = N_m/x)
//
// Each benchmark reports the figure's series via b.ReportMetric, so
// `go test -bench=. -benchmem` prints the same rows the paper plots.
// Figures 6-8 share the same underlying runs (cached per dataset and
// worker setting), exactly as in the paper, where one experiment feeds
// all three plots. The remaining benchmarks measure the performance of
// the core algorithms themselves.
package acd_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"acd/internal/blocking"
	"acd/internal/cluster"
	"acd/internal/core"
	"acd/internal/crowd"
	"acd/internal/dataset"
	"acd/internal/experiments"
	"acd/internal/machine"
	"acd/internal/pruning"
	"acd/internal/quality"
	"acd/internal/refine"
)

const benchSeed = 1

var (
	instMu    sync.Mutex
	instances = map[string]*experiments.Instance{}
	compCache = map[string][]experiments.MethodResult{}
)

func instance(b *testing.B, name string) *experiments.Instance {
	b.Helper()
	return instanceSeed(b, name, benchSeed)
}

// instanceSeed returns the cached instance for (name, seed), building it
// on first use. Shared by the benchmarks and the golden determinism
// tests so one `go test` run prepares each dataset at most once per
// seed.
func instanceSeed(tb testing.TB, name string, seed int64) *experiments.Instance {
	tb.Helper()
	key := fmt.Sprintf("%s@%d", name, seed)
	instMu.Lock()
	defer instMu.Unlock()
	if in, ok := instances[key]; ok {
		return in
	}
	in := experiments.MustInstance(name, seed)
	instances[key] = in
	return in
}

func comparison(b *testing.B, name string, workers int) []experiments.MethodResult {
	b.Helper()
	key := fmt.Sprintf("%s/%dw", name, workers)
	in := instance(b, name)
	instMu.Lock()
	defer instMu.Unlock()
	if rows, ok := compCache[key]; ok {
		return rows
	}
	rows := experiments.Comparison(in, workers)
	compCache[key] = rows
	return rows
}

// BenchmarkTable3 regenerates Table 3 and reports each dataset's
// candidate pairs and crowd error rates.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table3(benchSeed)
		for _, r := range rows {
			b.ReportMetric(float64(r.CandidatePairs), r.Dataset+"_pairs")
			b.ReportMetric(100*r.ErrorRate3W, r.Dataset+"_err3w_%")
			b.ReportMetric(100*r.ErrorRate5W, r.Dataset+"_err5w_%")
		}
	}
}

func benchFigure5(b *testing.B, metric func(experiments.Figure5Point) float64, ref func(experiments.Figure5Result) float64, unit string) {
	for _, name := range experiments.DatasetNames {
		b.Run(name, func(b *testing.B) {
			in := instance(b, name)
			for i := 0; i < b.N; i++ {
				res := experiments.Figure5(in, 3)
				for _, p := range res.Points {
					b.ReportMetric(metric(p), fmt.Sprintf("eps%.1f_%s", p.Epsilon, unit))
				}
				b.ReportMetric(ref(res), "CrowdPivot_"+unit)
			}
		})
	}
}

// BenchmarkFigure5Iterations regenerates Figures 5(a)-5(c): PC-Pivot
// crowd iterations across ε, with the sequential Crowd-Pivot reference.
func BenchmarkFigure5Iterations(b *testing.B) {
	benchFigure5(b,
		func(p experiments.Figure5Point) float64 { return p.Iterations },
		func(r experiments.Figure5Result) float64 { return r.CrowdPivotIterations },
		"iters")
}

// BenchmarkFigure5Pairs regenerates Figure 5(d): pairs issued across ε.
func BenchmarkFigure5Pairs(b *testing.B) {
	benchFigure5(b,
		func(p experiments.Figure5Point) float64 { return p.Pairs },
		func(r experiments.Figure5Result) float64 { return r.CrowdPivotPairs },
		"pairs")
}

func benchComparison(b *testing.B, metric func(experiments.MethodResult) (float64, bool), unit string) {
	for _, name := range experiments.DatasetNames {
		for _, workers := range []int{3, 5} {
			b.Run(fmt.Sprintf("%s-%dw", name, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					rows := comparison(b, name, workers)
					for _, r := range rows {
						if v, ok := metric(r); ok {
							b.ReportMetric(v, r.Method+"_"+unit)
						}
					}
				}
			})
		}
	}
}

// BenchmarkFigure6F1 regenerates Figure 6: the F1-measure of every
// method on every dataset under both worker settings.
func BenchmarkFigure6F1(b *testing.B) {
	benchComparison(b, func(r experiments.MethodResult) (float64, bool) { return r.F1, true }, "F1")
}

// BenchmarkFigure7Pairs regenerates Figure 7: the number of record pairs
// crowdsourced by every method.
func BenchmarkFigure7Pairs(b *testing.B) {
	benchComparison(b, func(r experiments.MethodResult) (float64, bool) { return r.Pairs, true }, "pairs")
}

// BenchmarkFigure8Iterations regenerates Figure 8: crowd iterations of
// every method; TransNode is omitted as in the paper (no batching).
func BenchmarkFigure8Iterations(b *testing.B) {
	benchComparison(b, func(r experiments.MethodResult) (float64, bool) {
		return r.Iterations, r.HasIterations
	}, "iters")
}

// BenchmarkFigure10 regenerates Figures 10(a)-10(c): full ACD under the
// refinement budgets T = N_m/x for x in {2, 4, 8, 16}.
func BenchmarkFigure10(b *testing.B) {
	for _, name := range experiments.DatasetNames {
		b.Run(name, func(b *testing.B) {
			in := instance(b, name)
			for i := 0; i < b.N; i++ {
				for _, p := range experiments.Figure10(in, 3) {
					b.ReportMetric(p.Pairs, fmt.Sprintf("x%d_pairs", p.X))
					b.ReportMetric(p.F1, fmt.Sprintf("x%d_F1", p.X))
					b.ReportMetric(p.Iterations, fmt.Sprintf("x%d_iters", p.X))
				}
			}
		})
	}
}

// BenchmarkAblationRefineVariants reports the refinement-strategy
// ablation (PC-Refine vs Crowd-Refine vs identity estimator vs
// Crowd-BOEM) on the Product dataset.
func BenchmarkAblationRefineVariants(b *testing.B) {
	in := instance(b, "Product")
	for i := 0; i < b.N; i++ {
		for _, r := range experiments.RefineVariants(in, 3) {
			b.ReportMetric(r.F1, r.Variant+"_F1")
			b.ReportMetric(r.Pairs, r.Variant+"_pairs")
			b.ReportMetric(r.Iterations, r.Variant+"_iters")
		}
	}
}

// BenchmarkAblationAdaptiveWorkers reports the adaptive worker
// allocation ablation (the paper's Section 8 future work) on every
// dataset.
func BenchmarkAblationAdaptiveWorkers(b *testing.B) {
	for _, name := range experiments.DatasetNames {
		b.Run(name, func(b *testing.B) {
			in := instance(b, name)
			for i := 0; i < b.N; i++ {
				for _, r := range experiments.AdaptiveWorkers(in, benchSeed) {
					b.ReportMetric(100*r.ErrorRate, r.Allocation+"_err_%")
					b.ReportMetric(r.VotesPerPair, r.Allocation+"_votes")
					b.ReportMetric(r.F1, r.Allocation+"_F1")
				}
			}
		})
	}
}

// BenchmarkAblationRobustness reports the error-sensitivity sweep on
// Paper: F1 of ACD vs the transitivity methods across worker error
// rates.
func BenchmarkAblationRobustness(b *testing.B) {
	in := instance(b, "Paper")
	for i := 0; i < b.N; i++ {
		for _, p := range experiments.Robustness(in, benchSeed) {
			tag := fmt.Sprintf("err%.0f_", 100*p.WorkerError)
			b.ReportMetric(p.F1["ACD"], tag+"ACD_F1")
			b.ReportMetric(p.F1["TransM"], tag+"TransM_F1")
		}
	}
}

// BenchmarkAblationAggregation reports the majority-vs-Dawid-Skene vote
// aggregation ablation on Product.
func BenchmarkAblationAggregation(b *testing.B) {
	in := instance(b, "Product")
	for i := 0; i < b.N; i++ {
		for _, r := range experiments.Aggregation(in, benchSeed) {
			b.ReportMetric(100*r.ErrorRate, r.Aggregation+"_err_%")
			b.ReportMetric(r.F1, r.Aggregation+"_F1")
		}
	}
}

// ---------------------------------------------------------------------------
// Performance benchmarks of the core algorithms.

// BenchmarkPruningJaccardJoin measures the prefix-filtered similarity
// join of the pruning phase on each dataset.
func BenchmarkPruningJaccardJoin(b *testing.B) {
	for _, name := range experiments.DatasetNames {
		b.Run(name, func(b *testing.B) {
			d, _ := dataset.ByName(name, benchSeed)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = pruning.Prune(d.Records, pruning.Options{})
			}
		})
	}
}

// BenchmarkNaiveJoin measures the quadratic reference join on the
// smallest dataset, for comparison with the indexed join.
func BenchmarkNaiveJoin(b *testing.B) {
	d, _ := dataset.ByName("Restaurant", benchSeed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = blocking.NaiveJoin(d.Records, nil, 0.3)
	}
}

// BenchmarkPCPivot measures one cluster generation phase (no
// refinement) on each dataset with the 3-worker answers.
func BenchmarkPCPivot(b *testing.B) {
	for _, name := range experiments.DatasetNames {
		b.Run(name, func(b *testing.B) {
			in := instance(b, name)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Session and RNG construction are setup, not the
				// algorithm under test — keep them off the clock.
				b.StopTimer()
				sess := crowd.NewSession(in.Answers(3))
				rng := rand.New(rand.NewSource(int64(i)))
				b.StartTimer()
				_, _ = core.PCPivot(in.Cands, sess, core.DefaultEpsilon, rng)
			}
		})
	}
}

// BenchmarkPCRefine measures one cluster refinement phase on each
// dataset, starting from a fresh PC-Pivot clustering.
func BenchmarkPCRefine(b *testing.B) {
	for _, name := range experiments.DatasetNames {
		b.Run(name, func(b *testing.B) {
			in := instance(b, name)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				sess := crowd.NewSession(in.Answers(3))
				rng := rand.New(rand.NewSource(int64(i)))
				c, _ := core.PCPivot(in.Cands, sess, core.DefaultEpsilon, rng)
				b.StartTimer()
				_ = refine.PCRefine(c, in.Cands, sess, refine.DefaultX)
			}
		})
	}
}

// BenchmarkMachinePivot measures the machine-only Pivot baseline over
// the candidate scores.
func BenchmarkMachinePivot(b *testing.B) {
	in := instance(b, "Paper")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		_ = machine.Pivot(in.Cands.N, in.Cands.Machine, rng)
	}
}

// BenchmarkLambda measures the sparse Λ computation on a Paper-sized
// clustering.
func BenchmarkLambda(b *testing.B) {
	in := instance(b, "Paper")
	rng := rand.New(rand.NewSource(7))
	c := machine.Pivot(in.Cands.N, in.Cands.Machine, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cluster.Lambda(c, in.Cands.Machine)
	}
}

// BenchmarkEvaluate measures pairwise P/R/F1 scoring.
func BenchmarkEvaluate(b *testing.B) {
	in := instance(b, "Product")
	rng := rand.New(rand.NewSource(7))
	c := machine.Pivot(in.Cands.N, in.Cands.Machine, rng)
	truth := in.Data.Truth()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cluster.Evaluate(c, truth)
	}
}

// BenchmarkBuildAnswers measures the crowd simulator drawing a full
// answer set for the largest candidate set.
func BenchmarkBuildAnswers(b *testing.B) {
	in := instance(b, "Paper")
	truth := in.Data.TruthFn()
	diff := crowd.UniformDifficulty(0.1)
	pairs := in.Cands.PairList()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = crowd.BuildAnswers(pairs, truth, diff, crowd.ThreeWorker(int64(i)))
	}
}

// BenchmarkMinHashJoin measures the LSH candidate generator against the
// exact join's dataset (see BenchmarkPruningJaccardJoin for the latter).
func BenchmarkMinHashJoin(b *testing.B) {
	for _, name := range experiments.DatasetNames {
		b.Run(name, func(b *testing.B) {
			d, _ := dataset.ByName(name, benchSeed)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = blocking.MinHashJoin(d.Records, pruning.DefaultTau, blocking.MinHashConfig{Seed: 1})
			}
		})
	}
}

// BenchmarkAgglomerative measures the average-linkage clustering that
// CrowdER+ and GCER finish with, over the Paper-sized candidate graph.
func BenchmarkAgglomerative(b *testing.B) {
	in := instance(b, "Paper")
	scores := make(cluster.Scores, len(in.Cands.Pairs))
	for _, sp := range in.Cands.Pairs {
		scores[sp.Pair] = in.Answers(3).Score(sp.Pair)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = machine.Agglomerative(in.Cands.N, scores, 0.5)
	}
}

// BenchmarkDawidSkene measures worker-quality EM over a full Product
// vote collection.
func BenchmarkDawidSkene(b *testing.B) {
	in := instance(b, "Product")
	pool := crowd.NewPool(crowd.PoolConfig{
		Size: 200, MeanError: 0.25, ErrorSpread: 0.18,
		QualificationPassRate: 1, Seed: benchSeed,
	})
	votes := crowd.CollectVotes(in.Cands.PairList(), in.Data.TruthFn(),
		crowd.UniformDifficulty(0), pool, crowd.Qualification{}, crowd.FiveWorker(benchSeed))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = quality.Estimate(votes, 30)
	}
}

// BenchmarkScaleACD runs the full pipeline on a 5000-record synthetic
// workload — the library-scale data point beyond the paper's datasets.
func BenchmarkScaleACD(b *testing.B) {
	d, err := dataset.Synthetic(dataset.SyntheticConfig{
		Entities: 1800, Records: 5000, Skew: 0.6, Seed: 13,
	})
	if err != nil {
		b.Fatal(err)
	}
	cands := pruning.Prune(d.Records, pruning.Options{})
	answers := crowd.BuildAnswers(cands.PairList(), d.TruthFn(), crowd.UniformDifficulty(0.05), crowd.ThreeWorker(3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := core.ACD(cands, answers, core.Config{Seed: int64(i)})
		e := cluster.Evaluate(out.Clusters, d.Truth())
		b.ReportMetric(e.F1, "F1")
		b.ReportMetric(float64(out.Stats.Pairs), "pairs")
	}
}

// BenchmarkDatasetGeneration measures the synthetic generators.
func BenchmarkDatasetGeneration(b *testing.B) {
	for _, name := range experiments.DatasetNames {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _ = dataset.ByName(name, int64(i))
			}
		})
	}
}
