#!/usr/bin/env sh
# replicabench.sh — produce the replication before/after serving
# numbers committed as BENCH_9.json. "Before" is the read-heavy
# scenario (one leader serves every read beside its write path);
# "after" is replica-reads (same mix and concurrency, but two
# followers absorb every snapshot read while the leader keeps the
# writes). The replica-failover drill rides along so the promotion
# wall time and lag-at-kill are part of the committed trajectory.
# Methodology: docs/serving.md section 3 and 5.
#
# Usage:
#   scripts/replicabench.sh [--smoke] [outfile]    # default BENCH_9.json
#
# Environment:
#   SHARDS  shard counts, space-separated (default "1 4"; smoke "1 3")
#   SEED    workload seed (default 1)
set -eu

smoke=""
if [ "${1:-}" = "--smoke" ]; then
    smoke="-smoke"
    shift
fi
out="${1:-BENCH_9.json}"
cd "$(dirname "$0")/.."

if [ -n "$smoke" ]; then
    shards_default="1 3"
else
    shards_default="1 4"
fi
shards_list="${SHARDS:-$shards_default}"
seed="${SEED:-1}"

suitedir="$(mktemp -d)"
trap 'rm -rf "$suitedir"' EXIT

go build ./cmd/acdload ./internal/tools/benchjson

suites=""
for n in $shards_list; do
    for s in read-heavy replica-reads replica-failover; do
        suite="$suitedir/replica-$s-${n}shard.json"
        echo "== acdload -scenario $s -shards $n $smoke" >&2
        go run ./cmd/acdload -scenario "$s" -shards "$n" $smoke \
            -seed "$seed" -out "$suite"
        suites="$suites $suite"
    done
done

# shellcheck disable=SC2086 — suites is a deliberate word list
go run ./internal/tools/benchjson -load -out "$out" $suites
echo "replicabench: wrote $out" >&2
