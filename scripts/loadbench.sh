#!/usr/bin/env sh
# loadbench.sh — run the acdload scenario suite against an in-process
# acdserve and fold the reports into a committed BENCH_N.json
# trajectory file. Methodology: docs/serving.md.
#
# Usage:
#   scripts/loadbench.sh [--smoke] [outfile]
#
#   --smoke  seconds-scale scenario variants (CI); default is full mode
#   outfile  target JSON file (default: BENCH_10.json)
#
# Environment:
#   SHARDS     shard counts to run, space-separated (default: "1 4";
#              smoke default: "1 3")
#   SCENARIOS  scenario selector passed to acdload -scenario
#              (default: all)
#   SEED       workload seed (default: 1)
#   COMMIT_WINDOW  journal group-commit window for the scenario
#              servers, e.g. 2ms (default: empty = fsync per event)
#   ROTATE_BYTES  WAL segment rotation size for the scenario servers
#              (default: empty = no rotation)
#   LABEL_SUFFIX  appended to every report label, so a batched run
#              (e.g. -gc) can sit beside the unbatched one in the
#              same BENCH file
#   KEEP_SUITES  set non-empty to keep the per-shard suite JSONs next
#              to the outfile instead of a temp dir
#
# The suite now includes the marketplace scenarios (mixed-fleet,
# backend-outage); their per-backend spend lands in each report's
# Load/<scenario>/scenario metrics. The committed BENCH_10.json adds
# the offline cost-per-F1 comparison on top of the suite:
#   scripts/loadbench.sh BENCH_10.json
#   go run ./cmd/acdbench -exp market -bench-out BENCH_10.json
# (Replication before/after pairs come from scripts/replicabench.sh.)
set -eu

smoke=""
if [ "${1:-}" = "--smoke" ]; then
    smoke="-smoke"
    shift
fi
out="${1:-BENCH_10.json}"
cd "$(dirname "$0")/.."

if [ -n "$smoke" ]; then
    shards_default="1 3"
else
    shards_default="1 4"
fi
shards_list="${SHARDS:-$shards_default}"
scenario="${SCENARIOS:-all}"
seed="${SEED:-1}"
commit_window="${COMMIT_WINDOW:-}"
rotate_bytes="${ROTATE_BYTES:-}"
label_suffix="${LABEL_SUFFIX:-}"

extra=""
if [ -n "$commit_window" ]; then
    extra="$extra -commit-window $commit_window"
fi
if [ -n "$rotate_bytes" ]; then
    extra="$extra -rotate-bytes $rotate_bytes"
fi
if [ -n "$label_suffix" ]; then
    extra="$extra -label-suffix $label_suffix"
fi

suitedir="$(mktemp -d)"
trap 'rm -rf "$suitedir"' EXIT
if [ -n "${KEEP_SUITES:-}" ]; then
    suitedir="$(dirname "$out")"
    trap - EXIT
fi

go build ./cmd/acdload ./internal/tools/benchjson

suites=""
for n in $shards_list; do
    suite="$suitedir/loadsuite${label_suffix}-${n}shard.json"
    echo "== acdload -scenario $scenario -shards $n $smoke$extra" >&2
    # shellcheck disable=SC2086 — extra is a deliberate word list
    go run ./cmd/acdload -scenario "$scenario" -shards "$n" $smoke $extra \
        -seed "$seed" -out "$suite"
    suites="$suites $suite"
done

# shellcheck disable=SC2086 — suites is a deliberate word list
go run ./internal/tools/benchjson -load -out "$out" $suites
echo "loadbench: wrote $out" >&2
