#!/usr/bin/env sh
# loadbench.sh — run the acdload scenario suite against an in-process
# acdserve and fold the reports into a committed BENCH_N.json
# trajectory file. Methodology: docs/serving.md.
#
# Usage:
#   scripts/loadbench.sh [--smoke] [outfile]
#
#   --smoke  seconds-scale scenario variants (CI); default is full mode
#   outfile  target JSON file (default: BENCH_7.json)
#
# Environment:
#   SHARDS     shard counts to run, space-separated (default: "1 4";
#              smoke default: "1 3")
#   SCENARIOS  scenario selector passed to acdload -scenario
#              (default: all)
#   SEED       workload seed (default: 1)
#   KEEP_SUITES  set non-empty to keep the per-shard suite JSONs next
#              to the outfile instead of a temp dir
set -eu

smoke=""
if [ "${1:-}" = "--smoke" ]; then
    smoke="-smoke"
    shift
fi
out="${1:-BENCH_7.json}"
cd "$(dirname "$0")/.."

if [ -n "$smoke" ]; then
    shards_default="1 3"
else
    shards_default="1 4"
fi
shards_list="${SHARDS:-$shards_default}"
scenario="${SCENARIOS:-all}"
seed="${SEED:-1}"

suitedir="$(mktemp -d)"
trap 'rm -rf "$suitedir"' EXIT
if [ -n "${KEEP_SUITES:-}" ]; then
    suitedir="$(dirname "$out")"
    trap - EXIT
fi

go build ./cmd/acdload ./internal/tools/benchjson

suites=""
for n in $shards_list; do
    suite="$suitedir/loadsuite-${n}shard.json"
    echo "== acdload -scenario $scenario -shards $n $smoke" >&2
    go run ./cmd/acdload -scenario "$scenario" -shards "$n" $smoke \
        -seed "$seed" -out "$suite"
    suites="$suites $suite"
done

# shellcheck disable=SC2086 — suites is a deliberate word list
go run ./internal/tools/benchjson -load -out "$out" $suites
echo "loadbench: wrote $out" >&2
