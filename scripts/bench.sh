#!/usr/bin/env sh
# bench.sh — capture the repo's core performance benchmarks into a
# committed BENCH_N.json trajectory file.
#
# Usage:
#   scripts/bench.sh [label] [outfile]
#
#   label    JSON label to store this capture under (default: post)
#   outfile  target JSON file (default: BENCH_3.json)
#
# Environment:
#   BENCHTIME  go test -benchtime value (default: 2s)
#   COUNT      go test -count value; runs are averaged (default: 3)
#   BENCH      go test -bench regex (default: the core hot-path suite)
#   PKG        package to benchmark (default: the repo root)
#
# The default benchmark set is the core hot-path suite named in ISSUE 3:
# PC-Pivot, PC-Refine, the pruning-phase Jaccard join, the full-pipeline
# scale run, and the sparse Λ computation. Other suites (e.g. the
# sharded-engine mix feeding BENCH_6.json) select themselves via BENCH
# and PKG. The journal group-commit ladder (events/sec and p99 append
# latency at group sizes 1/16/256 over MemFS and DirFS) runs with:
#
#   BENCH='JournalAppend' PKG=./internal/journal \
#       scripts/bench.sh journal BENCH_8_journal.json
set -eu

label="${1:-post}"
out="${2:-BENCH_3.json}"
cd "$(dirname "$0")/.."

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run NONE \
    -bench "${BENCH:-PCPivot$|PCRefine$|PruningJaccardJoin$|ScaleACD$|Lambda$}" \
    -benchmem -benchtime "${BENCHTIME:-2s}" -count "${COUNT:-3}" "${PKG:-.}" | tee "$tmp"

go run ./internal/tools/benchjson -label "$label" -out "$out" < "$tmp"
