// Citations: deduplicate the Cora-like Paper workload under heavy crowd
// noise (23% majority-vote error, Table 3) and contrast ACD's
// error-robust correlation clustering with TransM's transitivity, which
// amplifies the same errors (Figure 1, Section 1).
package main

import (
	"fmt"

	"acd/internal/baselines"
	"acd/internal/cluster"
	"acd/internal/core"
	"acd/internal/crowd"
	"acd/internal/dataset"
	"acd/internal/pruning"
)

func main() {
	d := dataset.Paper(1)
	fmt.Printf("dataset: %d citation records of %d papers\n", len(d.Records), d.NumEntities)
	fmt.Printf("example record: %q\n\n", d.Records[0].Text())

	cands := pruning.Prune(d.Records, pruning.Options{})
	fmt.Printf("pruning phase kept %d candidate pairs\n", len(cands.Pairs))

	// The crowd mixture calibrated to Table 3's Paper row: 23% of
	// majority votes are wrong, concentrated on misleading pairs.
	tgt, _ := dataset.Target("Paper")
	mix, _ := crowd.Calibrate(tgt.ErrorRate3W, tgt.ErrorRate5W)
	truth := d.TruthFn()
	diff := crowd.DifficultyAssignment(cands.PairList(), cands.Score, truth, mix)
	answers := crowd.BuildAnswers(cands.PairList(), truth, diff, crowd.ThreeWorker(11))
	fmt.Printf("simulated crowd majority-vote error rate: %.1f%%\n\n", 100*answers.ErrorRate())

	entities := d.Truth()

	acd := core.ACD(cands, answers, core.Config{Seed: 1})
	e := cluster.Evaluate(acd.Clusters, entities)
	fmt.Printf("ACD:    F1 %.3f (precision %.3f, recall %.3f), %6d pairs, %3d iterations\n",
		e.F1, e.Precision, e.Recall, acd.Stats.Pairs, acd.Stats.Iterations)

	tm := baselines.TransM(cands, answers)
	e = cluster.Evaluate(tm.Clusters, entities)
	fmt.Printf("TransM: F1 %.3f (precision %.3f, recall %.3f), %6d pairs, %3d iterations\n",
		e.F1, e.Precision, e.Recall, tm.Stats.Pairs, tm.Stats.Iterations)

	fmt.Println("\nTransM's transitive closure lets single wrong answers glue whole")
	fmt.Println("groups together; ACD reconciles inconsistent answers instead.")
}
