// Restaurants: an end-to-end integration-style run on the
// Fodors/Zagat-like listing workload — generate records, export them to
// CSV, reload them (the path an adopter with their own data would take),
// and deduplicate with ACD under a nearly-clean crowd.
package main

import (
	"bytes"
	"fmt"
	"log"

	"acd/internal/cluster"
	"acd/internal/core"
	"acd/internal/crowd"
	"acd/internal/dataset"
	"acd/internal/pruning"
)

func main() {
	// Generate and round-trip through CSV, as external data would enter.
	orig := dataset.Restaurant(2024)
	var buf bytes.Buffer
	if err := dataset.WriteCSV(&buf, orig); err != nil {
		log.Fatal(err)
	}
	d, err := dataset.ReadCSV(&buf, "Restaurant")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d restaurant listings (%d distinct restaurants)\n",
		len(d.Records), d.NumEntities)
	fmt.Printf("example listing: %q\n\n", d.Records[0].Text())

	cands := pruning.Prune(d.Records, pruning.Options{})

	// Restaurant crowds are nearly perfect (Table 3: 0.8% error at 3w).
	tgt, _ := dataset.Target("Restaurant")
	mix, _ := crowd.Calibrate(tgt.ErrorRate3W, tgt.ErrorRate5W)
	diff := crowd.DifficultyAssignment(cands.PairList(), cands.Score, d.TruthFn(), mix)
	answers := crowd.BuildAnswers(cands.PairList(), d.TruthFn(), diff, crowd.ThreeWorker(3))

	out := core.ACD(cands, answers, core.Config{Seed: 5})
	e := cluster.Evaluate(out.Clusters, d.Truth())

	fmt.Printf("ACD found %d clusters (F1 %.3f)\n", out.Clusters.NumClusters(), e.F1)
	fmt.Printf("crowd cost: %d of %d candidate pairs, %d iterations, %d cents\n\n",
		out.Stats.Pairs, len(cands.Pairs), out.Stats.Iterations, out.Stats.Cents)

	fmt.Println("sample duplicate groups found:")
	shown := 0
	for _, set := range out.Clusters.Sets() {
		if len(set) < 2 || shown >= 3 {
			continue
		}
		for _, r := range set {
			fmt.Printf("  %s | %s | %s\n",
				d.Records[r].Field("name"), d.Records[r].Field("address"), d.Records[r].Field("city"))
		}
		fmt.Println("  --")
		shown++
	}
}
