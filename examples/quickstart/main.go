// Quickstart: deduplicate a handful of commercial-brand records with the
// full ACD pipeline — the paper's motivating Chevrolet/Chevy/Chevron
// example (Section 1). A small simulated crowd distinguishes the
// lookalike brands that machine similarity alone confuses.
package main

import (
	"fmt"

	"acd/internal/cluster"
	"acd/internal/core"
	"acd/internal/crowd"
	"acd/internal/pruning"
	"acd/internal/record"
)

func main() {
	// Records with ground-truth entities (0 = the General Motors brand,
	// 1 = the oil company, 2 = an unrelated grocery chain).
	raw := []struct {
		text   string
		entity int
	}{
		{"chevrolet motor division detroit michigan usa", 0},
		{"chevy motor division detroit michigan usa", 0},
		{"chevrolet motor division of general motors detroit michigan", 0},
		{"chevron oil corporation san ramon california", 1},
		{"chevron corporation oil and gas san ramon", 1},
		{"chewton grocers of san ramon california", 2},
	}
	records := make([]record.Record, len(raw))
	for i, r := range raw {
		rec := record.New(record.ID(i), map[string]string{"name": r.text})
		rec.Entity = r.entity
		records[i] = rec
	}

	// Phase 1 (machine): prune dissimilar pairs with Jaccard, τ = 0.3.
	cands := pruning.Prune(records, pruning.Options{})
	fmt.Printf("pruning kept %d of %d pairs:\n", len(cands.Pairs), len(records)*(len(records)-1)/2)
	for _, sp := range cands.Pairs {
		fmt.Printf("  %v  f = %.2f\n", sp.Pair, sp.Score)
	}

	// Phases 2-3 (crowd): simulate 3 workers per pair with a 10%
	// per-worker error rate, then run cluster generation + refinement.
	truth := func(p record.Pair) bool { return records[p.Lo].Entity == records[p.Hi].Entity }
	answers := crowd.BuildAnswers(cands.PairList(), truth, crowd.UniformDifficulty(0.10), crowd.ThreeWorker(5))

	out := core.ACD(cands, answers, core.Config{Seed: 7})

	fmt.Println("\nclusters:")
	for _, set := range out.Clusters.Sets() {
		for _, r := range set {
			fmt.Printf("  %s\n", records[r].Field("name"))
		}
		fmt.Println("  --")
	}
	entities := make([]int, len(records))
	for i, r := range records {
		entities[i] = r.Entity
	}
	e := cluster.Evaluate(out.Clusters, entities)
	fmt.Printf("precision %.2f, recall %.2f, F1 %.2f\n", e.Precision, e.Recall, e.F1)
	fmt.Printf("crowd cost: %d pairs in %d iterations (%d HITs, %d cents)\n",
		out.Stats.Pairs, out.Stats.Iterations, out.Stats.HITs, out.Stats.Cents)
}
