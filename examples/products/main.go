// Products: budget-constrained deduplication of the Abt-Buy-like product
// catalog. Compares what each method buys with the same crowdsourcing
// spend: ACD against GCER at ACD's measured budget, and CrowdER+ paying
// for the full candidate set — the trade-off at the heart of Figures 6-7.
package main

import (
	"fmt"

	"acd/internal/baselines"
	"acd/internal/cluster"
	"acd/internal/core"
	"acd/internal/crowd"
	"acd/internal/dataset"
	"acd/internal/pruning"
)

func main() {
	d := dataset.Product(7)
	fmt.Printf("catalog: %d product listings of %d products\n", len(d.Records), d.NumEntities)
	fmt.Printf("example listing: %q\n\n", d.Records[0].Text())

	cands := pruning.Prune(d.Records, pruning.Options{})
	tgt, _ := dataset.Target("Product")
	mix, _ := crowd.Calibrate(tgt.ErrorRate3W, tgt.ErrorRate5W)
	diff := crowd.DifficultyAssignment(cands.PairList(), cands.Score, d.TruthFn(), mix)

	entities := d.Truth()
	for _, workers := range []int{3, 5} {
		cfg := crowd.ThreeWorker(9)
		if workers == 5 {
			cfg = crowd.FiveWorker(9)
		}
		answers := crowd.BuildAnswers(cands.PairList(), d.TruthFn(), diff, cfg)
		fmt.Printf("== %d-worker setting (crowd error %.1f%%)\n", workers, 100*answers.ErrorRate())

		acd := core.ACD(cands, answers, core.Config{Seed: 3})
		e := cluster.Evaluate(acd.Clusters, entities)
		fmt.Printf("ACD       F1 %.3f  %5d pairs  %4d cents\n", e.F1, acd.Stats.Pairs, acd.Stats.Cents)

		gcer := baselines.GCER(cands, answers, acd.Stats.Pairs, 10)
		e = cluster.Evaluate(gcer.Clusters, entities)
		fmt.Printf("GCER      F1 %.3f  %5d pairs  %4d cents  (budget matched to ACD)\n",
			e.F1, gcer.Stats.Pairs, gcer.Stats.Cents)

		ce := baselines.CrowdERPlus(cands, answers)
		e = cluster.Evaluate(ce.Clusters, entities)
		fmt.Printf("CrowdER+  F1 %.3f  %5d pairs  %4d cents  (full candidate set)\n\n",
			e.F1, ce.Stats.Pairs, ce.Stats.Cents)
	}
}
