// Livecrowd: using the public facade with a *live-style* crowd backend.
// Real crowdsourcing platforms answer each pair after minutes of human
// latency; this example stands one in with a slow answering function and
// shows how the library's batching keeps wall-clock time proportional to
// crowd iterations rather than to the number of pairs, via the bounded
// concurrent fan-out of crowd.AsyncSource.
package main

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"acd/internal/cluster"
	"acd/internal/core"
	"acd/internal/crowd"
	"acd/internal/dataset"
	"acd/internal/pruning"
	"acd/internal/record"
)

func main() {
	d := dataset.Restaurant(11)
	cands := pruning.Prune(d.Records, pruning.Options{})
	truth := d.TruthFn()

	// The "platform": each answer takes 1ms of simulated human latency
	// (stand-in for minutes) and is correct 99.5% of the time (Table 3's
	// Restaurant crowd), keyed deterministically per pair.
	var calls int64
	platform := func(p record.Pair) float64 {
		atomic.AddInt64(&calls, 1)
		time.Sleep(time.Millisecond)
		h := uint64(p.Lo)*0x9e3779b97f4a7c15 + uint64(p.Hi)
		h ^= h >> 31
		wrong := h%1000 < 5
		if truth(p) != wrong {
			return 1
		}
		return 0
	}

	src := crowd.AsyncSource{
		Fn:          platform,
		Concurrency: 64, // 64 HIT groups in flight at once
		Setting:     crowd.ThreeWorker(0),
	}

	start := time.Now()
	sess := crowd.NewSession(src)
	clusters, _ := core.PCPivot(cands, sess, core.DefaultEpsilon, rand.New(rand.NewSource(1)))
	clusters.Compact()
	elapsed := time.Since(start)

	e := cluster.Evaluate(clusters, d.Truth())
	st := sess.Stats()
	fmt.Printf("deduplicated %d records in %v\n", len(d.Records), elapsed.Round(time.Millisecond))
	fmt.Printf("  F1 %.3f across %d clusters\n", e.F1, clusters.NumClusters())
	fmt.Printf("  %d pairs answered (%d platform calls) in %d crowd iterations\n",
		st.Pairs, atomic.LoadInt64(&calls), st.Iterations)
	fmt.Printf("  sequential latency would have been ~%v; batching paid ~%v\n",
		time.Duration(st.Pairs)*time.Millisecond,
		elapsed.Round(time.Millisecond))
}
