package acd_test

import (
	"fmt"

	"acd"
)

// ExampleDeduplicate deduplicates four records with a perfect crowd.
func ExampleDeduplicate() {
	records := []acd.Record{
		{Fields: map[string]string{"name": "chevrolet motor division detroit"}},
		{Fields: map[string]string{"name": "chevy motor division detroit"}},
		{Fields: map[string]string{"name": "chevron oil corporation california"}},
		{Fields: map[string]string{"name": "chevron corporation oil california"}},
	}
	entity := []int{0, 0, 1, 1}
	crowdFn := func(i, j int) float64 {
		if entity[i] == entity[j] {
			return 1
		}
		return 0
	}
	res, err := acd.Deduplicate(records, crowdFn, acd.Options{Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println(len(res.Clusters), "clusters")
	_, _, f1 := res.F1(entity)
	fmt.Printf("F1 %.1f\n", f1)
	// Output:
	// 2 clusters
	// F1 1.0
}
